"""Regression: one SubtypeEngine memo is shared across the whole pipeline.

Before the batch-service work every stage that posed subtype goals built
its own engine (moded checker, mode checker, witness audits, constrained
execution), so hot ``τ ⪰_C τ′`` goals were re-derived per stage.  The
frontend now owns one engine per module — ``CheckedModule.engine`` — and
threads it through; these tests pin the sharing down via the engine's
memo statistics and the ``cache_probe`` trace events it emits.
"""

from pathlib import Path

from repro import obs
from repro.checker.frontend import check_text
from repro.obs import CacheProbeEvent

MODES_SOURCE = (
    Path(__file__).resolve().parents[2] / "examples" / "programs" / "modes.tlp"
).read_text()


def test_module_exposes_the_shared_engine():
    module = check_text(MODES_SOURCE)
    assert module.ok
    assert module.engine is not None
    assert module.engine.constraints is module.constraints
    # The moded checker derives through the very same instance.
    assert module.moded_checker is not None
    assert module.moded_checker.engine is module.engine
    # And the strict checker inside it is the module's own (one matcher
    # memo for strict and moded checking alike).
    assert module.moded_checker.strict is module.checker


def test_unmoded_modules_get_an_engine_too():
    from repro.workloads import APPEND

    module = check_text(APPEND)
    assert module.ok
    assert module.engine is not None


def test_cross_stage_goals_hit_the_shared_memo():
    """The mode checker re-poses goals the moded pipeline already proved:
    with one shared engine those land as memo hits, visible both in the
    engine's stats and as hit=True ``cache_probe`` events."""
    with obs.collect() as (_metrics, sink):
        module = check_text(MODES_SOURCE)
    assert module.ok
    stats = module.engine.stats
    assert stats.memo_hits > 0, "expected re-posed subtype goals to hit the memo"
    probes = [
        event
        for event in sink.events
        if isinstance(event, CacheProbeEvent) and event.cache.startswith("subtype.")
    ]
    assert any(event.hit for event in probes)


def test_separate_engines_would_not_share(tmp_path):
    """Control: two independent engines over the same constraints start
    with cold memos — the sharing is a property of the single instance,
    not of the constraint set."""
    from repro.core.subtype import SubtypeEngine

    module = check_text(MODES_SOURCE)
    fresh = SubtypeEngine(module.constraints, validate=False)
    assert fresh.stats.memo_hits == 0
    assert fresh._memo == {} and module.engine._memo != {}
