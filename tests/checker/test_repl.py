"""REPL tests via the non-interactive session driver."""

import pytest

from repro.checker.repl import Repl, run_session
from repro.checker import check_text
from repro.workloads import APPEND, NATURALS_ARITHMETIC


def test_query_answers():
    out = run_session(APPEND, ["app(cons(nil,nil), nil, R)."])
    assert out == ["R = cons(nil, nil)"]


def test_query_without_dot_and_with_prefix():
    out = run_session(APPEND, [":- app(nil, nil, R)"])
    assert out == ["R = nil"]


def test_ground_query_yes_no():
    out = run_session(APPEND, ["app(nil, nil, nil).", "app(nil, nil, cons(nil,nil))."])
    assert out == ["yes.", "no."]


def test_ill_typed_query_reported():
    out = run_session(NATURALS_ARITHMETIC, ["plus(0, nil, R)."])
    assert len(out) == 1
    assert out[0].startswith("ill-typed query")


def test_syntax_error_reported():
    out = run_session(APPEND, ["app(((."])
    assert out[0].startswith("syntax error")


def test_sub_command():
    out = run_session(NATURALS_ARITHMETIC, [":sub int >= nat", ":sub nat >= int"])
    assert out == ["int >= nat: yes", "nat >= int: no"]


def test_member_command():
    out = run_session(
        NATURALS_ARITHMETIC,
        [":member nat succ(0)", ":member nat pred(0)"],
    )
    assert out == [
        "succ(0) in M[nat]: yes",
        "pred(0) in M[nat]: no",
    ]


def test_member_requires_ground():
    out = run_session(NATURALS_ARITHMETIC, [":member nat succ(X)"])
    assert out == ["membership needs a ground term"]


def test_types_command():
    out = run_session(NATURALS_ARITHMETIC, [":types succ(0)"])
    assert len(out) == 1
    assert "nat" in out[0]
    assert "int" in out[0]
    assert "unnat" not in out[0]


def test_constrained_query_in_repl():
    # le(X, succ(0)) enumerates X ∈ {0, succ(0)} (finite); the unnat
    # store then keeps only 0.
    out = run_session(NATURALS_ARITHMETIC, ["le(X, succ(0)), X : unnat."])
    assert out == ["X = 0"]


def test_constrained_residual_shown():
    out = run_session(NATURALS_ARITHMETIC, ["X : nat."])
    assert len(out) == 1
    assert "| X : nat" in out[0]


def test_why_explains_accepted_query():
    out = run_session(APPEND, [":why app(cons(nil,nil), nil, R)"])
    text = "\n".join(out)
    assert text.startswith("well-typed")
    assert "goal 1:" in text
    assert "R : list" in text


def test_why_explains_rejected_query():
    out = run_session(NATURALS_ARITHMETIC, [":why plus(0, nil, R)"])
    text = "\n".join(out)
    assert text.startswith("NOT well-typed")


def test_help_and_unknown():
    out = run_session(APPEND, [":help"])
    assert any("commands" in line for line in out)
    out = run_session(APPEND, [":frobnicate"])
    assert "unknown command" in out[0]


def test_quit_stops_session():
    out = run_session(APPEND, [":quit", "app(nil, nil, R)."])
    assert out == []


def test_blank_and_comment_lines_ignored():
    out = run_session(APPEND, ["", "   ", "% a comment"])
    assert out == []


def test_repl_refuses_broken_module():
    module = check_text("FUNC .")
    with pytest.raises(ValueError):
        Repl(module)


def test_max_answers_respected():
    module = check_text(APPEND)
    repl = Repl(module, max_answers=2)
    out = repl.execute("app(X, Y, cons(nil, cons(nil, nil))).")
    assert len(out) == 2


def test_profile_command_cycle():
    from repro import obs

    try:
        out = run_session(
            APPEND,
            [
                ":profile",  # off: hint message
                ":profile on",
                "app(cons(nil,nil), nil, R).",
                ":profile",  # table over the recorded query spans
                ":profile reset",
                ":profile",  # cleared: nothing profiled yet
                ":profile off",
            ],
        )
    finally:
        obs.TRACER.clear_sinks()
    text = "\n".join(out)
    assert "profiler off" in out[0]
    assert "profiler on" in text
    assert "span profile:" in text
    assert "typed_query" in text  # real resolution spans were captured
    assert "(no spans profiled)" in text  # after :profile reset
    assert out[-1] == "profiler off"
    assert not obs.TRACER.enabled


MODED_SOURCE = """\
TYPE nat, int.
FUNC 0, succ, pred.
int >= nat.
nat >= 0 + succ(nat).
int >= pred(int).
PRED produce(nat).
MODE produce(OUT).
produce(succ(0)).
PRED nat2int(nat, int).
MODE nat2int(IN, OUT).
nat2int(X, X).
"""


def test_modes_command_lists_declarations_and_verdicts():
    out = run_session(MODED_SOURCE, [":modes"])
    assert any("produce(OUT)" in line for line in out)
    assert any("nat2int(IN, OUT)" in line for line in out)
    # The plain fact passes strictly; the widening echo clause needs
    # the directional fallback.
    assert any(
        "produce(succ(0))" in line and "well-moded via strict" in line
        for line in out
    )
    assert any(
        "nat2int(X, X)" in line and "well-moded via directional" in line
        for line in out
    )


def test_modes_command_without_declarations():
    out = run_session(APPEND, [":modes"])
    assert out == [
        "no MODE declarations in the loaded module "
        "(strict Definition 16 applies everywhere)"
    ]


def test_modes_command_rejects_arguments():
    out = run_session(MODED_SOURCE, [":modes produce"])
    assert out == ["usage: :modes (no arguments)"]


def test_help_mentions_modes():
    out = run_session(APPEND, [":help"])
    assert any(":modes" in line for line in out)


# -- :solve -------------------------------------------------------------------


def test_solve_command_renders_polymorphic_constraint_graphs():
    out = run_session(APPEND, [":solve"])
    assert any(line.startswith("candidate ground types:") for line in out)
    assert any("satisfiable" in line for line in out)
    assert any(line.strip().startswith("type var A:") for line in out)


def test_solve_command_without_polymorphism():
    out = run_session(NATURALS_ARITHMETIC, [":solve"])
    assert out == [
        "nothing to solve: no polymorphic declarations or built-in "
        "constraint goals in the loaded module"
    ]


def test_solve_command_rejects_arguments():
    out = run_session(APPEND, [":solve app"])
    assert out == ["usage: :solve (no arguments)"]


def test_help_mentions_solve():
    out = run_session(APPEND, [":help"])
    assert any(":solve" in line for line in out)
