"""Whole-file checker tests: arity inference, diagnostics, the paper's
programs end to end (experiment E6's frontend half)."""

import pytest

from repro.checker import check_text
from repro.workloads import APPEND, ILL_TYPED_EXAMPLES, LIST_LIBRARY, NATURALS_ARITHMETIC


def test_append_checks_clean():
    module = check_text(APPEND)
    assert module.ok, module.diagnostics.render()
    assert len(module.program) == 2
    assert module.symbols.is_function("cons")
    assert module.symbols.is_type_constructor("list")


def test_arity_inference_from_use():
    module = check_text(APPEND)
    assert module.symbols.functions["cons"] == 2
    assert module.symbols.functions["nil"] == 0
    assert module.symbols.type_constructors["list"] == 1
    assert module.symbols.type_constructors["elist"] == 0


def test_unused_symbol_defaults_to_constant():
    module = check_text("FUNC lonely.\nTYPE t.\nt >= lonely.")
    assert module.ok
    assert module.symbols.functions["lonely"] == 0


def test_conflicting_arities_diagnosed():
    module = check_text(
        """
        FUNC f.
        TYPE t.
        t >= f(t).
        t >= f(t, t).
        """
    )
    assert not module.ok
    assert "multiple arities" in module.diagnostics.render()


def test_parse_error_becomes_diagnostic():
    module = check_text("FUNC .")
    assert not module.ok
    assert len(module.diagnostics.errors) == 1


def test_lex_error_becomes_diagnostic():
    module = check_text("FUNC a?b.")
    assert not module.ok


def test_undeclared_symbol_in_clause():
    module = check_text(
        """
        FUNC nil.
        TYPE elist.
        elist >= nil.
        PRED p(elist).
        p(zork).
        """
    )
    assert not module.ok
    assert "zork" in module.diagnostics.render()


def test_type_constructor_in_object_term_rejected():
    module = check_text(
        """
        FUNC nil.
        TYPE elist.
        elist >= nil.
        PRED p(elist).
        p(elist).
        """
    )
    assert not module.ok


def test_nonuniform_declarations_diagnosed():
    module = check_text(
        """
        FUNC m, 0, succ.
        TYPE id, males, nat.
        nat >= 0 + succ(nat).
        id(males) >= m(nat).
        """
    )
    assert not module.ok
    assert "uniform" in module.diagnostics.render()


def test_unguarded_declarations_diagnosed():
    module = check_text(
        """
        FUNC f.
        TYPE c.
        c >= c.
        """
    )
    assert not module.ok
    assert "guarded" in module.diagnostics.render()


def test_duplicate_pred_declaration():
    module = check_text(
        """
        FUNC nil.
        TYPE elist.
        elist >= nil.
        PRED p(elist).
        PRED p(elist + elist).
        """
    )
    assert not module.ok
    assert "declared twice" in module.diagnostics.render()


@pytest.mark.parametrize("name", sorted(ILL_TYPED_EXAMPLES))
def test_paper_ill_typed_examples_rejected(name):
    module = check_text(ILL_TYPED_EXAMPLES[name])
    assert not module.ok, f"{name} should be rejected"
    assert "not well-typed" in module.diagnostics.render()


def test_canonical_programs_accepted():
    for source in (APPEND, NATURALS_ARITHMETIC, LIST_LIBRARY):
        module = check_text(source)
        assert module.ok, module.diagnostics.render()


def test_diagnostics_carry_positions():
    # In the list-only universe `0` is an undeclared symbol; both of its
    # occurrences are diagnosed at the query's source line.
    source = APPEND + ":- app(nil, 0, 0).\n"
    module = check_text(source)
    assert not module.ok
    for error in module.diagnostics.errors:
        assert error.position is not None
        assert error.position.line == len(APPEND.splitlines()) + 1


def test_mode_declarations_checked():
    source = """
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED p(nat).
PRED q(int).
MODE p(IN).
MODE q(OUT).
p(0).
q(0).
:- q(X), p(X).
"""
    module = check_text(source)
    assert not module.ok
    assert "mode violation" in module.diagnostics.render()


def test_mode_declarations_accept_good_flow():
    # With modes declared, the [DH88]-style directional fallback accepts
    # the sub→supertype flow that strict Definition 16 rejects.
    source = """
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED p(nat).
PRED q(int).
MODE p(OUT).
MODE q(IN).
p(0).
q(0).
:- p(X), q(X).
"""
    module = check_text(source)
    assert module.ok, module.diagnostics.render()
    assert module.moded_checker is not None


def test_constrained_query_opts_out_of_definition16():
    # The Section 7 typed-unification form: Definition 16 would reject
    # p(X), q(X) (nat vs int contexts); the X : nat constraint moves the
    # query into the dynamic model and the frontend accepts it.
    source = """
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED p(nat).
PRED q(int).
p(0).
q(0).
:- p(X), X : nat, q(X).
"""
    module = check_text(source)
    assert module.ok, module.diagnostics.render()
    assert len(module.queries) == 1


def test_constraint_type_side_still_validated():
    source = """
FUNC 0, succ.
TYPE nat.
nat >= 0 + succ(nat).
PRED p(nat).
p(0).
:- p(X), X : zork.
"""
    module = check_text(source)
    assert not module.ok
    assert "zork" in module.diagnostics.render()


def test_moded_widening_clause_accepted_end_to_end():
    source = """
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED nat2int(nat, int).
MODE nat2int(IN, OUT).
nat2int(X, X).
"""
    module = check_text(source)
    assert module.ok, module.diagnostics.render()


def test_inline_pred_modes_thread_into_the_mode_environment():
    source = """
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED nat2int(IN nat, OUT int).
nat2int(X, X).
"""
    module = check_text(source)
    assert module.ok, module.diagnostics.render()
    assert module.modes is not None
    assert dict(module.modes.items())[("nat2int", 2)] == ("IN", "OUT")
    assert module.moded_checker is not None


def test_conflicting_inline_and_standalone_modes_rejected():
    source = """
FUNC 0.
TYPE nat.
nat >= 0.
PRED p(IN nat).
MODE p(OUT).
p(0).
"""
    module = check_text(source)
    assert not module.ok
    assert "p" in module.diagnostics.render()


def test_clause_and_query_positions_are_recorded():
    source = """\
FUNC nil.
TYPE t.
t >= nil.
PRED p(t).
p(nil).
:- p(nil).
"""
    module = check_text(source)
    assert module.ok
    assert len(module.clause_positions) == len(module.program)
    assert len(module.query_positions) == len(module.queries)
    assert module.clause_positions[0].line == 5
    assert module.query_positions[0].line == 6
