"""CLI tests: exit codes, output, --run execution."""

import pytest

from repro.checker.cli import main
from repro.workloads import APPEND, ILL_TYPED_EXAMPLES


@pytest.fixture()
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


def test_well_typed_file_exits_zero(write, capsys):
    path = write("append.tlp", APPEND)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "well-typed" in out
    assert "2 clauses" in out


def test_ill_typed_file_exits_one(write, capsys):
    path = write("bad.tlp", ILL_TYPED_EXAMPLES["query_two_contexts"])
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "not well-typed" in out


def test_missing_file_exits_two(capsys):
    assert main(["/nonexistent/nope.tlp"]) == 2


def test_multiple_files(write, capsys):
    good = write("good.tlp", APPEND)
    bad = write("bad.tlp", ILL_TYPED_EXAMPLES["head_two_contexts"])
    assert main([good, bad]) == 1


def test_run_executes_queries(write, capsys):
    source = APPEND + ":- app(cons(nil,nil), nil, X).\n"
    path = write("run.tlp", source)
    assert main([path, "--run"]) == 0
    out = capsys.readouterr().out
    assert "?- app(" in out
    assert "X = cons(nil, nil)" in out


def test_run_reports_no_answers(write, capsys):
    source = APPEND + ":- app(cons(nil,nil), nil, nil).\n"
    path = write("noanswer.tlp", source)
    assert main([path, "--run"]) == 0
    out = capsys.readouterr().out
    assert "no." in out


def test_run_ground_success_prints_yes(write, capsys):
    source = APPEND + ":- app(nil, nil, nil).\n"
    path = write("yes.tlp", source)
    assert main([path, "--run"]) == 0
    assert "yes." in capsys.readouterr().out


def test_max_answers_limits_output(write, capsys):
    source = APPEND + ":- app(X, Y, cons(nil, cons(nil, nil))).\n"
    path = write("many.tlp", source)
    assert main([path, "--run", "--max-answers", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("X = ") == 2


# -- observability flags -------------------------------------------------------


def test_profile_prints_table_and_machine_line(write, capsys):
    path = write("append.tlp", APPEND)
    assert main([path, "--profile"]) == 0
    out = capsys.readouterr().out
    assert "span profile:" in out
    assert "tlp_check" in out  # the CLI's own root span
    machine = [line for line in out.splitlines() if line.startswith("profile: ")]
    assert len(machine) == 1
    fields = dict(part.split("=") for part in machine[0].split()[1:])
    # Acceptance gate: per-name self times attribute >=90% of wall time.
    assert float(fields["coverage"]) >= 0.9
    assert int(fields["spans"]) >= 2
    assert float(fields["self_total_s"]) <= float(fields["wall_s"]) * 1.001


def test_profile_to_file_writes_collapsed_stacks(write, tmp_path, capsys):
    path = write("append.tlp", APPEND)
    collapsed = tmp_path / "flame.collapsed"
    assert main([path, f"--profile={collapsed}"]) == 0
    capsys.readouterr()
    lines = collapsed.read_text().splitlines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert stack and int(weight) > 0
    # Every stack is rooted at the CLI's own span.
    assert all(line.startswith("tlp_check") for line in lines)


def test_metrics_out_writes_parseable_exposition(write, tmp_path, capsys):
    from repro.obs import parse_exposition

    path = write("append.tlp", APPEND)
    out = tmp_path / "metrics.prom"
    assert main([path, "--metrics-out", str(out)]) == 0
    capsys.readouterr()
    samples = parse_exposition(out.read_text())
    assert samples["tlp_checker_modules_checked_total"] == 1
    assert any(name.endswith('_bucket{le="+Inf"}') for name in samples)


def test_profile_restores_disabled_state(write, capsys):
    from repro import obs

    path = write("append.tlp", APPEND)
    assert main([path, "--profile"]) == 0
    capsys.readouterr()
    assert not obs.METRICS.enabled
    assert not obs.TRACER.enabled
