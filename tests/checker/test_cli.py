"""CLI tests: exit codes, output, --run execution."""

import pytest

from repro.checker.cli import main
from repro.workloads import APPEND, ILL_TYPED_EXAMPLES


@pytest.fixture()
def write(tmp_path):
    def _write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


def test_well_typed_file_exits_zero(write, capsys):
    path = write("append.tlp", APPEND)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "well-typed" in out
    assert "2 clauses" in out


def test_ill_typed_file_exits_one(write, capsys):
    path = write("bad.tlp", ILL_TYPED_EXAMPLES["query_two_contexts"])
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "not well-typed" in out


def test_missing_file_exits_two(capsys):
    assert main(["/nonexistent/nope.tlp"]) == 2


def test_multiple_files(write, capsys):
    good = write("good.tlp", APPEND)
    bad = write("bad.tlp", ILL_TYPED_EXAMPLES["head_two_contexts"])
    assert main([good, bad]) == 1


def test_run_executes_queries(write, capsys):
    source = APPEND + ":- app(cons(nil,nil), nil, X).\n"
    path = write("run.tlp", source)
    assert main([path, "--run"]) == 0
    out = capsys.readouterr().out
    assert "?- app(" in out
    assert "X = cons(nil, nil)" in out


def test_run_reports_no_answers(write, capsys):
    source = APPEND + ":- app(cons(nil,nil), nil, nil).\n"
    path = write("noanswer.tlp", source)
    assert main([path, "--run"]) == 0
    out = capsys.readouterr().out
    assert "no." in out


def test_run_ground_success_prints_yes(write, capsys):
    source = APPEND + ":- app(nil, nil, nil).\n"
    path = write("yes.tlp", source)
    assert main([path, "--run"]) == 0
    assert "yes." in capsys.readouterr().out


def test_max_answers_limits_output(write, capsys):
    source = APPEND + ":- app(X, Y, cons(nil, cons(nil, nil))).\n"
    path = write("many.tlp", source)
    assert main([path, "--run", "--max-answers", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("X = ") == 2
