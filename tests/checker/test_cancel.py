"""Cooperative cancellation: tokens, clause-boundary checkpoints."""

import pytest

from repro.checker import CancelToken, CheckCancelled
from repro.checker.cancel import checkpoint
from repro.checker.frontend import check_text
from repro.workloads import APPEND
from repro.workloads.generators import synthetic_list_program


def test_token_starts_live_and_cancels_once():
    token = CancelToken()
    assert not token.cancelled
    token.checkpoint()  # live token: a checkpoint is a no-op
    token.cancel()
    assert token.cancelled
    token.cancel()  # idempotent
    with pytest.raises(CheckCancelled):
        token.checkpoint()


def test_checkpoint_error_names_the_clause_boundary():
    token = CancelToken()
    token.checkpoint()
    token.checkpoint()
    token.cancel()
    with pytest.raises(CheckCancelled, match="checkpoint 3"):
        token.checkpoint()


def test_module_helper_tolerates_absent_token():
    checkpoint(None)  # must be a no-op, not an AttributeError
    token = CancelToken()
    token.cancel()
    with pytest.raises(CheckCancelled):
        checkpoint(token)


def test_check_text_without_token_is_unaffected():
    module = check_text(APPEND)
    assert module.ok


def test_check_text_with_live_token_completes_and_counts_checkpoints():
    token = CancelToken()
    module = check_text(APPEND, cancel=token)
    assert module.ok
    # One checkpoint after parse, then at least one per clause/query.
    assert token.checkpoints >= 1 + len(module.program)


def test_precancelled_check_stops_at_the_first_checkpoint():
    token = CancelToken()
    token.cancel()
    with pytest.raises(CheckCancelled):
        check_text(synthetic_list_program(50), cancel=token)
    assert token.checkpoints == 1  # parsed, then stopped immediately


def test_cancellation_mid_run_stops_within_one_clause():
    text = synthetic_list_program(40)
    baseline = CancelToken()
    check_text(text, cancel=baseline)

    trip_at = baseline.checkpoints // 2

    class TrippingToken(CancelToken):
        def checkpoint(self) -> None:
            super().checkpoint()
            if self.checkpoints == trip_at:
                self.cancel()

    token = TrippingToken()
    with pytest.raises(CheckCancelled):
        check_text(text, cancel=token)
    # Stopped at the very next clause boundary after the trip.
    assert token.checkpoints == trip_at + 1
