"""tlp-check's corpus features: directory arguments, cache/jobs flags."""

import pytest

from repro.checker.cli import main
from repro.workloads import APPEND, ILL_TYPED_EXAMPLES


@pytest.fixture()
def corpus(tmp_path):
    (tmp_path / "append.tlp").write_text(APPEND)
    nested = tmp_path / "nested"
    nested.mkdir()
    (nested / "more.tlp").write_text(APPEND)
    (tmp_path / "notes.txt").write_text("not a program")
    return tmp_path


def test_directory_argument_checks_every_tlp_file(corpus, capsys):
    assert main([str(corpus)]) == 0
    out = capsys.readouterr().out
    assert out.count("well-typed") == 2
    assert "append.tlp" in out and "more.tlp" in out
    assert "notes.txt" not in out


def test_empty_directory_is_a_usage_error(tmp_path, capsys):
    assert main([str(tmp_path)]) == 2
    assert "no .tlp files" in capsys.readouterr().err


def test_missing_path_still_exits_two(capsys):
    assert main(["/nonexistent/nowhere"]) == 2


def test_multi_file_run_prints_per_file_summary_for_ill_typed(corpus, capsys):
    bad = corpus / "bad.tlp"
    bad.write_text(ILL_TYPED_EXAMPLES["query_two_contexts"])
    assert main([str(corpus)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}: ill-typed (" in out
    assert out.count(": well-typed (") == 2


def test_cache_dir_flag_replays_warm_results(corpus, tmp_path, capsys):
    cache_dir = str(tmp_path / "the-cache")
    assert main([str(corpus), "--cache-dir", cache_dir]) == 0
    cold_out = capsys.readouterr().out
    assert "[cached]" not in cold_out
    assert main([str(corpus), "--cache-dir", cache_dir]) == 0
    warm_out = capsys.readouterr().out
    assert warm_out.count("[cached]") == 2
    assert warm_out.replace(" [cached]", "") == cold_out


def test_cache_dir_preserves_ill_typed_exit_and_diagnostics(corpus, tmp_path, capsys):
    bad = corpus / "bad.tlp"
    bad.write_text(ILL_TYPED_EXAMPLES["query_two_contexts"])
    cache_dir = str(tmp_path / "the-cache")
    assert main([str(corpus), "--cache-dir", cache_dir]) == 1
    cold_out = capsys.readouterr().out
    assert main([str(corpus), "--cache-dir", cache_dir]) == 1
    warm_out = capsys.readouterr().out
    assert warm_out.replace(" [cached]", "") == cold_out
    assert "ill-typed" in warm_out


def test_jobs_flag_matches_sequential_output(corpus, capsys):
    assert main([str(corpus)]) == 0
    sequential = capsys.readouterr().out
    assert main([str(corpus), "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential


def test_run_flag_keeps_the_sequential_interpreter_path(corpus, capsys):
    source = APPEND + ":- app(cons(nil,nil), nil, X).\n"
    (corpus / "queries.tlp").write_text(source)
    assert main([str(corpus / "queries.tlp"), "--run", "--jobs", "4"]) == 0
    out = capsys.readouterr().out
    assert "X = cons(nil, nil)" in out
