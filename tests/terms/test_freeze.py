"""Tests for the bar operation (freeze/melt) of Definition 5."""

from repro.terms import (
    Var,
    atom,
    freeze,
    freeze_many,
    is_frozen_constant,
    melt,
    struct,
    variables_of,
)
from repro.terms.freeze import freeze_with_mapping


def test_freeze_ground_term_unchanged():
    term = struct("f", atom("a"))
    assert freeze(term) == term


def test_freeze_replaces_variables_with_constants():
    frozen = freeze(struct("f", Var("X"), Var("Y")))
    assert not variables_of(frozen)
    assert is_frozen_constant(frozen.args[0])
    assert is_frozen_constant(frozen.args[1])
    assert frozen.args[0] != frozen.args[1]


def test_freeze_same_variable_same_constant():
    frozen = freeze(struct("f", Var("X"), Var("X")))
    assert frozen.args[0] == frozen.args[1]


def test_freeze_constants_globally_unique():
    first = freeze(Var("X"))
    second = freeze(Var("X"))
    assert first != second  # fresh constants on every call


def test_melt_round_trip():
    term = struct("f", Var("X"), struct("g", Var("Y"), Var("X")))
    frozen, mapping = freeze_with_mapping(term)
    assert melt(frozen, mapping) == term


def test_freeze_many_shares_mapping():
    left = struct("f", Var("A"))
    right = struct("g", Var("A"), Var("B"))
    frozen_left, frozen_right = freeze_many([left, right])
    # Shared variable A freezes to the same constant in both terms.
    assert frozen_left.args[0] == frozen_right.args[0]
    assert frozen_right.args[0] != frozen_right.args[1]


def test_is_frozen_constant_rejects_ordinary_terms():
    assert not is_frozen_constant(atom("a"))
    assert not is_frozen_constant(Var("X"))
    assert not is_frozen_constant(struct("f", atom("a")))
