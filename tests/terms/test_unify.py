"""Unit and property tests for unification (idempotent, relevant mgus)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.terms import (
    Struct,
    Substitution,
    UnificationError,
    Var,
    atom,
    mgu,
    struct,
    unifiable,
    unify,
    variables_of,
)


def test_unify_identical_constants():
    assert unify(atom("a"), atom("a")) == Substitution()


def test_unify_distinct_constants_fails():
    assert unify(atom("a"), atom("b")) is None


def test_unify_var_with_term():
    result = unify(Var("X"), struct("f", atom("a")))
    assert result is not None
    assert result[Var("X")] == struct("f", atom("a"))


def test_unify_functor_mismatch():
    assert unify(struct("f", Var("X")), struct("g", Var("X"))) is None


def test_unify_arity_mismatch():
    assert unify(struct("f", Var("X")), struct("f", Var("X"), Var("Y"))) is None


def test_unify_componentwise():
    result = unify(
        struct("f", Var("X"), atom("b")),
        struct("f", atom("a"), Var("Y")),
    )
    assert result is not None
    assert result[Var("X")] == atom("a")
    assert result[Var("Y")] == atom("b")


def test_unify_shared_variable_chains():
    # f(X, X) with f(Y, a) must bind both X and Y to a.
    result = unify(struct("f", Var("X"), Var("X")), struct("f", Var("Y"), atom("a")))
    assert result is not None
    assert result.apply(Var("X")) == atom("a")
    assert result.apply(Var("Y")) == atom("a")


def test_occurs_check_blocks_cyclic_binding():
    assert unify(Var("X"), struct("f", Var("X"))) is None


def test_occurs_check_can_be_disabled():
    result = unify(Var("X"), struct("f", Var("X")), occurs_check=False)
    assert result is not None  # unsound, Prolog-style


def test_deep_occurs_check():
    term = struct("f", struct("g", struct("h", Var("X"))))
    assert unify(Var("X"), term) is None


def test_mgu_raises_on_failure():
    with pytest.raises(UnificationError):
        mgu(atom("a"), atom("b"))


def test_unifiable_predicate():
    assert unifiable(Var("X"), atom("a"))
    assert not unifiable(atom("a"), atom("b"))


def test_result_is_idempotent_on_chained_bindings():
    result = unify(
        struct("f", Var("X"), Var("Y")),
        struct("f", struct("g", Var("Y")), atom("a")),
    )
    assert result is not None
    assert result.is_idempotent()
    assert result.apply(Var("X")) == struct("g", atom("a"))


# -- property-based tests ------------------------------------------------------

variables = st.sampled_from([Var("X"), Var("Y"), Var("Z")])
constants = st.sampled_from([atom("a"), atom("b"), atom("c")])


def _terms(depth):
    if depth == 0:
        return variables | constants
    smaller = _terms(depth - 1)
    compounds = st.builds(
        lambda functor, args: Struct(functor, tuple(args)),
        st.sampled_from(["f", "g"]),
        st.lists(smaller, min_size=1, max_size=2),
    )
    return variables | constants | compounds


terms = _terms(3)


@given(terms, terms)
@settings(max_examples=300)
def test_unify_produces_a_unifier(left, right):
    result = unify(left, right)
    if result is not None:
        assert result.apply(left) == result.apply(right)


@given(terms, terms)
@settings(max_examples=300)
def test_unifier_is_idempotent_and_relevant(left, right):
    result = unify(left, right)
    if result is not None:
        assert result.is_idempotent()
        assert result.is_relevant_for(left, right)


@given(terms, terms)
@settings(max_examples=200)
def test_unify_is_symmetric_in_success(left, right):
    forward = unify(left, right)
    backward = unify(right, left)
    assert (forward is None) == (backward is None)


@given(terms)
@settings(max_examples=200)
def test_self_unification_is_empty_on_variables_of(term):
    result = unify(term, term)
    assert result is not None
    assert len(result) == 0


@given(terms, terms)
@settings(max_examples=200)
def test_most_generality_via_instance_check(left, right):
    """If θ = mgu and σ is any other unifier built by grounding, then θ is
    at least as general: σ factors through θ on the unified term."""
    theta = unify(left, right)
    if theta is None:
        return
    grounding = Substitution(
        {var: atom("a") for var in variables_of(left) | variables_of(right)}
    )
    if grounding.apply(left) == grounding.apply(right):
        unified = theta.apply(left)
        assert unify(unified, grounding.apply(left)) is not None
