"""Unit tests for the term representation and traversals."""

import pytest

from repro.terms import (
    Struct,
    Var,
    atom,
    fresh_variable,
    functors_of,
    is_ground,
    occurs_in,
    rename_apart,
    struct,
    subterms,
    symbols_of,
    term_depth,
    term_size,
    variables_in_order,
    variables_of,
)


def test_var_equality_by_name():
    assert Var("X") == Var("X")
    assert Var("X") != Var("Y")


def test_struct_equality_structural():
    assert struct("f", Var("X")) == struct("f", Var("X"))
    assert struct("f", Var("X")) != struct("f", Var("Y"))
    assert struct("f") != struct("g")


def test_atom_is_nullary_struct():
    a = atom("nil")
    assert isinstance(a, Struct)
    assert a.args == ()
    assert a.arity == 0
    assert a.indicator == ("nil", 0)


def test_struct_hash_consistency():
    t1 = struct("cons", Var("X"), atom("nil"))
    t2 = struct("cons", Var("X"), atom("nil"))
    assert hash(t1) == hash(t2)
    assert len({t1, t2}) == 1


def test_str_rendering():
    assert str(struct("cons", Var("X"), atom("nil"))) == "cons(X, nil)"
    assert str(atom("nil")) == "nil"
    assert str(Var("X")) == "X"


def test_subterms_preorder():
    term = struct("f", struct("g", Var("X")), atom("a"))
    listed = list(subterms(term))
    assert listed[0] == term
    assert listed[1] == struct("g", Var("X"))
    assert listed[2] == Var("X")
    assert listed[3] == atom("a")


def test_variables_of():
    term = struct("f", Var("X"), struct("g", Var("Y"), Var("X")))
    assert variables_of(term) == {Var("X"), Var("Y")}
    assert variables_of(atom("a")) == set()


def test_variables_in_order():
    term = struct("f", Var("B"), struct("g", Var("A"), Var("B")))
    assert variables_in_order(term) == [Var("B"), Var("A")]


def test_is_ground():
    assert is_ground(struct("f", atom("a"), atom("b")))
    assert not is_ground(struct("f", Var("X")))
    assert not is_ground(Var("X"))


def test_term_size_and_depth():
    term = struct("f", struct("g", atom("a")), Var("X"))
    assert term_size(term) == 4
    assert term_depth(term) == 3
    assert term_depth(atom("a")) == 1
    assert term_depth(Var("X")) == 1


def test_deep_term_traversal_is_iterative():
    term = atom("z")
    for _ in range(50_000):
        term = struct("s", term)
    assert term_depth(term) == 50_001
    assert term_size(term) == 50_001
    assert is_ground(term)


def test_occurs_in():
    term = struct("f", struct("g", Var("X")))
    assert occurs_in(Var("X"), term)
    assert not occurs_in(Var("Y"), term)
    assert occurs_in(Var("X"), Var("X"))


def test_symbols_and_functors():
    term = struct("f", struct("g", atom("a")), atom("a"))
    assert symbols_of(term) == {("f", 2), ("g", 1), ("a", 0)}
    assert functors_of(term) == {"f", "g", "a"}


def test_fresh_variables_are_distinct():
    seen = {fresh_variable() for _ in range(1000)}
    assert len(seen) == 1000


def test_rename_apart_preserves_structure():
    term = struct("f", Var("X"), struct("g", Var("X"), Var("Y")))
    renamed, mapping = rename_apart(term)
    assert len(mapping) == 2
    assert isinstance(renamed, Struct)
    # Shared variables stay shared after renaming.
    assert renamed.args[0] == renamed.args[1].args[0]
    assert variables_of(renamed).isdisjoint(variables_of(term))


def test_rename_apart_ground_term_unchanged():
    term = struct("f", atom("a"))
    renamed, mapping = rename_apart(term)
    assert renamed == term
    assert mapping == {}
