"""Differential properties of the hash-consing term kernel.

Interning is a representation optimisation, never a semantic one: terms
built with the intern table on and off must be indistinguishable to every
observer — printing, parsing, equality/hashing, and above all the subtype
and match engines, down to their exact work counters.  These tests pin
that down on the random workloads the benchmark generators emit.
"""

import contextlib
import random

import pytest

from repro.core.match import Matcher, is_typing_result
from repro.core.subtype import SubtypeEngine
from repro.lang import parse_term
from repro.terms.pretty import pretty
from repro.terms.term import (
    Struct,
    Var,
    clear_intern_table,
    intern_stats,
    interning_enabled,
    set_interning,
)
from repro.workloads import deep_nat, nat_list, paper_universe
from repro.workloads.generators import (
    random_guarded_constraint_set,
    random_subtype_pair,
    random_type,
)

SEEDS = [7, 23, 101]


@contextlib.contextmanager
def interning(on):
    previous = set_interning(on)
    try:
        yield
    finally:
        set_interning(previous)


def _random_terms(seed, count=20):
    rng = random.Random(seed)
    constraints = random_guarded_constraint_set(rng)
    terms = [random_type(rng, constraints, depth=4) for _ in range(count)]
    terms += [deep_nat(50), nat_list(10, 2)]
    return terms


# -- construction canonicalisation -------------------------------------------------


def test_interning_is_on_by_default():
    assert interning_enabled()


def test_equal_construction_yields_the_same_object():
    with interning(True):
        one = Struct("cons", (Struct("0", ()), Struct("nil", ())))
        two = Struct("cons", (Struct("0", ()), Struct("nil", ())))
        assert one is two
        assert Var("X") is Var("X")


def test_disabled_interning_yields_distinct_objects():
    with interning(False):
        one = Struct("cons", (Struct("0", ()), Struct("nil", ())))
        two = Struct("cons", (Struct("0", ()), Struct("nil", ())))
        assert one is not two
        assert one == two and hash(one) == hash(two)


def test_intern_table_records_traffic():
    with interning(True):
        clear_intern_table()
        tower = deep_nat(30)  # held: weak table entries live with the referent
        stats = intern_stats()
        assert stats.misses > 0
        rebuilt = deep_nat(30)  # identical tower: every node is a hit now
        assert rebuilt is tower
        again = intern_stats()
        assert again.hits >= stats.hits + 30
        assert again.size > 0


def test_mixed_populations_compare_and_hash_identically():
    """Terms built under either setting mix freely in sets/dicts."""
    with interning(True):
        interned = nat_list(5, 2)
    with interning(False):
        plain = nat_list(5, 2)
    assert interned == plain and plain == interned
    assert hash(interned) == hash(plain)
    assert len({interned, plain}) == 1
    table = {interned: "value"}
    assert table[plain] == "value"


# -- round-trips --------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_parse_intern_pretty_round_trip(seed):
    for term in _random_terms(seed):
        text = pretty(term)
        with interning(True):
            assert parse_term(text) == term
            assert pretty(parse_term(text)) == text
        with interning(False):
            assert parse_term(text) == term
            assert pretty(parse_term(text)) == text


def test_pickle_reinterns():
    import pickle

    with interning(True):
        term = nat_list(4, 3)
        clone = pickle.loads(pickle.dumps(term))
        assert clone is term  # unpickling routes through the intern table
    with interning(False):
        clone = pickle.loads(pickle.dumps(term))
        assert clone == term and clone is not term


# -- engine agreement ---------------------------------------------------------------


def _subtype_workload(seed, goals=25):
    """(constraints, [(supertype, candidate), ...]) built under the
    *current* interning setting — call once per setting with one seed."""
    rng = random.Random(seed)
    constraints = random_guarded_constraint_set(rng)
    pairs = [random_subtype_pair(rng, constraints) for _ in range(goals)]
    return constraints, pairs


@pytest.mark.parametrize("seed", SEEDS)
def test_subtype_verdicts_and_counters_agree(seed):
    """Interned and non-interned engines agree on every ``holds`` verdict
    AND on the exact SubtypeStats work counters — interning must not
    change a single algorithm step, only the cost of each step."""
    with interning(True):
        constraints_a, pairs_a = _subtype_workload(seed)
        engine_a = SubtypeEngine(constraints_a)
        verdicts_a = [engine_a.holds(sup, sub) for sup, sub in pairs_a]
        stats_a = engine_a.stats
    with interning(False):
        constraints_b, pairs_b = _subtype_workload(seed)
        engine_b = SubtypeEngine(constraints_b)
        verdicts_b = [engine_b.holds(sup, sub) for sup, sub in pairs_b]
        stats_b = engine_b.stats
    assert pairs_a == pairs_b  # same seed, same workload, either way
    assert verdicts_a == verdicts_b
    assert stats_a == stats_b


@pytest.mark.parametrize("seed", SEEDS)
def test_match_verdicts_agree(seed):
    with interning(True):
        constraints_a, pairs_a = _subtype_workload(seed)
        matcher_a = Matcher(constraints_a)
        results_a = [matcher_a.match(sup, sub) for sup, sub in pairs_a]
    with interning(False):
        constraints_b, pairs_b = _subtype_workload(seed)
        matcher_b = Matcher(constraints_b)
        results_b = [matcher_b.match(sup, sub) for sup, sub in pairs_b]
    assert len(results_a) == len(results_b)
    for result_a, result_b in zip(results_a, results_b):
        assert is_typing_result(result_a) == is_typing_result(result_b)
        if is_typing_result(result_a):
            assert dict(result_a.items()) == dict(result_b.items())
        else:
            assert repr(result_a) == repr(result_b)  # fail vs bottom


def test_paper_universe_membership_agrees():
    nat = parse_term("nat")
    towers = [deep_nat(depth) for depth in (0, 1, 7, 40)]
    with interning(True):
        engine = SubtypeEngine(paper_universe())
        expected = [engine.contains(nat, tower) for tower in towers]
    with interning(False):
        engine = SubtypeEngine(paper_universe())
        plain_towers = [deep_nat(depth) for depth in (0, 1, 7, 40)]
        assert [engine.contains(nat, t) for t in plain_towers] == expected
