"""Pretty-printer tests, including the parse∘pretty round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse_term
from repro.terms import Struct, Var, atom, pretty, struct


def test_pretty_variable():
    assert pretty(Var("Xs")) == "Xs"


def test_pretty_constant():
    assert pretty(atom("nil")) == "nil"


def test_pretty_application():
    assert pretty(struct("cons", Var("X"), atom("nil"))) == "cons(X, nil)"


def test_pretty_union_infix():
    assert pretty(struct("+", atom("a"), atom("b"))) == "a + b"


def test_pretty_union_left_associative():
    nested = struct("+", struct("+", atom("a"), atom("b")), atom("c"))
    assert pretty(nested) == "a + b + c"
    assert parse_term(pretty(nested)) == nested


def test_pretty_union_right_nested_parenthesised():
    nested = struct("+", atom("a"), struct("+", atom("b"), atom("c")))
    assert pretty(nested) == "a + (b + c)"
    assert parse_term(pretty(nested)) == nested


def test_pretty_union_inside_application():
    term = struct("list", struct("+", atom("a"), atom("b")))
    assert pretty(term) == "list(a + b)"
    assert parse_term(pretty(term)) == term


# -- round-trip property ---------------------------------------------------------

variables = st.sampled_from([Var("X"), Var("Y"), Var("Zs")])
constants = st.sampled_from([atom("a"), atom("nil"), atom("0")])


def _terms(depth):
    if depth == 0:
        return variables | constants
    smaller = _terms(depth - 1)
    compounds = st.builds(
        lambda functor, args: Struct(functor, tuple(args)),
        st.sampled_from(["f", "cons", "succ"]),
        st.lists(smaller, min_size=1, max_size=3),
    )
    unions = st.builds(lambda l, r: Struct("+", (l, r)), smaller, smaller)
    return variables | constants | compounds | unions


@given(_terms(3))
@settings(max_examples=300)
def test_parse_pretty_round_trip(term):
    assert parse_term(pretty(term)) == term
