"""Unit tests for substitutions: application, composition, properties."""

import pytest

from repro.terms import EMPTY_SUBSTITUTION, Substitution, Var, atom, struct


def sub(**bindings):
    return Substitution({Var(name): value for name, value in bindings.items()})


def test_identity_bindings_dropped():
    s = Substitution({Var("X"): Var("X"), Var("Y"): atom("a")})
    assert Var("X") not in s
    assert len(s) == 1


def test_domain_rejects_non_variables():
    with pytest.raises(TypeError):
        Substitution({atom("a"): atom("b")})  # type: ignore[dict-item]


def test_apply_simple():
    s = sub(X=atom("a"))
    assert s.apply(Var("X")) == atom("a")
    assert s.apply(Var("Y")) == Var("Y")
    assert s.apply(struct("f", Var("X"), Var("Y"))) == struct("f", atom("a"), Var("Y"))


def test_apply_is_simultaneous_not_iterated():
    # {X -> Y, Y -> a} applied to X gives Y, not a.
    s = sub(X=Var("Y"), Y=atom("a"))
    assert s.apply(Var("X")) == Var("Y")


def test_apply_shares_unchanged_subterms():
    term = struct("f", atom("a"))
    s = sub(X=atom("b"))
    assert s.apply(term) is term


def test_callable_alias():
    s = sub(X=atom("a"))
    assert s(Var("X")) == atom("a")


def test_compose_associativity_of_application():
    s1 = sub(X=struct("f", Var("Y")))
    s2 = sub(Y=atom("a"))
    term = struct("g", Var("X"), Var("Y"))
    assert s1.compose(s2).apply(term) == s2.apply(s1.apply(term))


def test_compose_domain_union():
    s1 = sub(X=atom("a"))
    s2 = sub(Y=atom("b"))
    composed = s1.compose(s2)
    assert composed.domain == {Var("X"), Var("Y")}


def test_compose_left_bias():
    # X bound by s1 stays bound by s1's (updated) value.
    s1 = sub(X=Var("Y"))
    s2 = sub(X=atom("b"), Y=atom("a"))
    composed = s1.compose(s2)
    assert composed[Var("X")] == atom("a")


def test_empty_substitution():
    term = struct("f", Var("X"))
    assert EMPTY_SUBSTITUTION.apply(term) is term
    assert len(EMPTY_SUBSTITUTION) == 0
    assert EMPTY_SUBSTITUTION.is_idempotent()


def test_restrict():
    s = sub(X=atom("a"), Y=atom("b"))
    restricted = s.restrict({Var("X")})
    assert Var("X") in restricted
    assert Var("Y") not in restricted


def test_update_overrides():
    s = sub(X=atom("a"))
    updated = s.update({Var("X"): atom("b"), Var("Z"): atom("c")})
    assert updated[Var("X")] == atom("b")
    assert updated[Var("Z")] == atom("c")
    assert s[Var("X")] == atom("a")  # original untouched


def test_idempotence_check():
    assert sub(X=atom("a")).is_idempotent()
    assert not sub(X=struct("f", Var("X"))).is_idempotent()
    assert not sub(X=Var("Y"), Y=atom("a")).is_idempotent()


def test_relevance_check():
    s = sub(X=Var("Y"))
    assert s.is_relevant_for(struct("f", Var("X"), Var("Y")))
    assert not s.is_relevant_for(struct("f", Var("X")))


def test_equality_and_hash():
    assert sub(X=atom("a")) == sub(X=atom("a"))
    assert sub(X=atom("a")) != sub(X=atom("b"))
    assert hash(sub(X=atom("a"))) == hash(sub(X=atom("a")))


def test_range_variables():
    s = sub(X=struct("f", Var("Y"), Var("Z")))
    assert s.range_variables == {Var("Y"), Var("Z")}
