"""SARIF 2.1.0 output: structural validation against the spec subset.

No third-party JSON-Schema library ships in this environment, so
``SARIF_STRUCTURE`` vendors the relevant fragment of the official
2.1.0 schema (required properties, types, level enum) and a small
structural checker enforces it.
"""

from repro.analysis import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    LintConfig,
    default_registry,
    lint_text,
    to_sarif,
)

# The shape GitHub code scanning requires of a SARIF upload, transcribed
# from the oasis-tcs sarif-schema-2.1.0 definitions we emit.
SARIF_STRUCTURE = {
    "required": ["version", "runs"],
    "version_enum": ["2.1.0"],
    "run_required": ["tool", "results"],
    "driver_required": ["name", "rules"],
    "rule_required": ["id", "shortDescription", "defaultConfiguration"],
    "result_required": ["ruleId", "level", "message", "locations"],
    "level_enum": ["none", "note", "warning", "error"],
    "region_required": ["startLine", "startColumn"],
}


def validate_sarif(document):
    """Assert ``document`` matches the vendored schema fragment."""
    for key in SARIF_STRUCTURE["required"]:
        assert key in document, f"missing top-level {key!r}"
    assert document["version"] in SARIF_STRUCTURE["version_enum"]
    assert isinstance(document["runs"], list) and document["runs"]
    for run in document["runs"]:
        for key in SARIF_STRUCTURE["run_required"]:
            assert key in run, f"missing run {key!r}"
        driver = run["tool"]["driver"]
        for key in SARIF_STRUCTURE["driver_required"]:
            assert key in driver, f"missing driver {key!r}"
        rules = driver["rules"]
        for rule in rules:
            for key in SARIF_STRUCTURE["rule_required"]:
                assert key in rule, f"missing rule {key!r}"
            assert isinstance(rule["shortDescription"]["text"], str)
            assert (
                rule["defaultConfiguration"]["level"]
                in SARIF_STRUCTURE["level_enum"]
            )
        ids = [rule["id"] for rule in rules]
        assert len(ids) == len(set(ids)), "duplicate rule ids"
        for result in run["results"]:
            for key in SARIF_STRUCTURE["result_required"]:
                assert key in result, f"missing result {key!r}"
            assert result["level"] in SARIF_STRUCTURE["level_enum"]
            assert isinstance(result["message"]["text"], str)
            if "ruleIndex" in result:
                assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            for location in result["locations"]:
                physical = location["physicalLocation"]
                assert "uri" in physical["artifactLocation"]
                region = physical.get("region")
                if region is not None:
                    for key in SARIF_STRUCTURE["region_required"]:
                        assert key in region, f"missing region {key!r}"
                    assert all(
                        isinstance(v, int) and v >= 1 for v in region.values()
                    )


DEFECT = """\
FUNC s.
TYPE nat.
nat >= s(nat).
PRED count(nat).
count(s(N)) :- count(N).
"""


def document_for(text):
    report = lint_text(text, path="defect.tlp")
    findings = [("defect.tlp", d) for d in report.diagnostics]
    return to_sarif(findings, default_registry())


def test_document_validates_against_schema_fragment():
    validate_sarif(document_for(DEFECT))


def test_schema_and_version_pinned():
    document = document_for(DEFECT)
    assert document["version"] == SARIF_VERSION == "2.1.0"
    assert document["$schema"] == SARIF_SCHEMA_URI
    assert "sarif-schema-2.1.0" in SARIF_SCHEMA_URI


def test_results_carry_rule_ids_and_regions():
    document = document_for(DEFECT)
    results = document["runs"][0]["results"]
    # The uninhabited-type defect also deadens the predicate built on
    # it: the success-set rules ride along.
    assert [r["ruleId"] for r in results] == ["TLP103", "TLP401", "TLP402"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 3  # the nat >= s(nat). constraint
    assert region["endColumn"] > region["startColumn"]


def test_fixits_become_fixes():
    document = document_for(DEFECT)
    fixes = document["runs"][0]["results"][0]["fixes"]
    assert fixes and "base-case" in fixes[0]["description"]["text"]


def test_syntax_errors_get_the_tlp001_descriptor():
    document = document_for("FUNC s\n")
    run = document["runs"][0]
    assert run["results"][0]["ruleId"] == "TLP001"
    assert run["tool"]["driver"]["rules"][0]["id"] == "TLP001"
    validate_sarif(document)


def test_disabled_rules_dropped_from_driver():
    report = lint_text(DEFECT, path="defect.tlp")
    config = LintConfig(disabled=frozenset({"TLP203"}))
    document = to_sarif([], default_registry(), config)
    ids = [r["id"] for r in document["runs"][0]["tool"]["driver"]["rules"]]
    assert "TLP203" not in ids and "TLP103" in ids


def test_empty_findings_still_valid():
    validate_sarif(to_sarif([], default_registry()))
