"""The TLP5xx declared-mode rule family (§7, after [DH88])."""

from repro.analysis import LintConfig, lint_text
from repro.analysis.fixes import apply_fixits

BASE = """\
TYPE nat, int.
FUNC 0, s, pred.
int >= nat.
nat >= 0 + s(nat).
int >= pred(int).
"""

MODED_LIBRARY = BASE + """\
PRED int2nat(int, nat).
MODE int2nat(IN, OUT).
int2nat(0, 0).
int2nat(s(X), s(Y)) :- int2nat(X, Y).
PRED makeint(int).
MODE makeint(OUT).
makeint(0).
PRED usenat(nat).
MODE usenat(IN).
usenat(0).
"""


def findings(text, prefix="TLP5"):
    return [
        d for d in lint_text(text, config=LintConfig()).diagnostics
        if d.code.startswith(prefix)
    ]


def codes(text):
    return [d.code for d in findings(text)]


# -- gating -------------------------------------------------------------------


def test_family_is_gated_on_mode_declarations():
    # The same dangerous query that seeds TLP502, minus every MODE line:
    # TLP301 territory, no TLP5xx findings at all.
    text = BASE + (
        "PRED makeint(int).\nmakeint(0).\n"
        "PRED usenat(nat).\nusenat(0).\n"
        ":- makeint(X), usenat(X).\n"
    )
    assert codes(text) == []


def test_well_moded_module_is_silent():
    assert codes(MODED_LIBRARY) == []
    assert codes(MODED_LIBRARY + ":- makeint(X), int2nat(X, N), usenat(N).\n") == []


def test_echo_clause_out_fed_by_head_in_is_not_flagged():
    # nat2int(X, X) delivers its OUT from the head IN — well-moded via
    # the directional conditions, not a TLP503/505 false positive.
    text = BASE + (
        "PRED nat2int(nat, int).\nMODE nat2int(IN, OUT).\nnat2int(X, X).\n"
    )
    assert codes(text) == []


# -- TLP501: the declarations themselves --------------------------------------


def test_tlp501_arity_mismatch_with_machine_fixit():
    text = MODED_LIBRARY + "PRED len(int, nat).\nMODE len(IN).\nlen(0, 0).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP501"]
    fixed = apply_fixits(text, found)
    assert "MODE len(IN, OUT)." in fixed
    assert codes(fixed) == []


def test_tlp501_conflicting_declarations():
    text = MODED_LIBRARY + (
        "PRED p(nat).\nMODE p(IN).\nMODE p(OUT).\np(0).\n"
    )
    found = findings(text)
    assert [d.code for d in found] == ["TLP501"]
    assert "conflicting" in found[0].message
    # The later declaration loses: the fix restates the earlier one.
    fixed = apply_fixits(text, found)
    assert fixed.count("MODE p(IN).") == 2
    assert codes(fixed) == []


def test_tlp501_inline_vs_standalone_conflict():
    text = BASE + "PRED p(IN nat).\nMODE p(OUT).\np(0).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP501"]


def test_tlp501_mode_for_undeclared_predicate_is_advisory():
    text = MODED_LIBRARY + "MODE ghost(IN).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP501"]
    assert "no PRED declaration" in found[0].message
    assert all(not fixit.replacement for fixit in found[0].fixits)


# -- TLP502: ill-moded call sites ---------------------------------------------


def test_tlp502_supertype_flow_fixit_inserts_the_filter():
    text = MODED_LIBRARY + ":- makeint(X), usenat(X).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP502"]
    assert found[0].severity == "error"
    fixed = apply_fixits(text, found)
    assert ":- makeint(X), int2nat(X, X_nat), usenat(X_nat)." in fixed
    assert codes(fixed) == []


def test_tlp502_consumed_before_produced_is_advisory():
    text = MODED_LIBRARY + ":- usenat(X), makeint(X).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP502"]
    assert "before being produced" in found[0].message
    assert all(not fixit.replacement for fixit in found[0].fixits)


# -- TLP503: head OUT the clause never delivers -------------------------------


def test_tlp503_unproduced_head_out_flips_declaration_to_in():
    text = MODED_LIBRARY + "PRED mk(nat).\nMODE mk(OUT).\nmk(X).\n"
    found = [d for d in findings(text) if d.code == "TLP503"]
    assert len(found) == 1
    assert found[0].severity == "warning"
    fixed = apply_fixits(text, found)
    assert "MODE mk(IN)." in fixed
    assert codes(fixed) == []


def test_tlp503_rewrites_the_inline_pred_form():
    text = MODED_LIBRARY + "PRED mk(OUT nat).\nmk(X).\n"
    found = [d for d in findings(text) if d.code == "TLP503"]
    assert len(found) == 1
    fixed = apply_fixits(text, found)
    assert "PRED mk(IN nat)." in fixed
    assert codes(fixed) == []


# -- TLP504: not well-moded ---------------------------------------------------


def test_tlp504_missing_modes_fixit_inserts_inferred_declarations():
    # The widening clause needs the directional fallback, which needs a
    # mode on every atom carrying the shared variable.
    text = MODED_LIBRARY + "PRED widen(nat, int).\nwiden(X, X).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP504"]
    fixed = apply_fixits(text, found)
    assert "MODE widen(" in fixed
    assert codes(fixed) == []


def test_tlp504_skipped_when_tlp502_already_explains_the_item():
    text = MODED_LIBRARY + ":- makeint(X), usenat(X).\n"
    assert codes(text) == ["TLP502"]


# -- TLP505: OUT positions nothing can produce --------------------------------


def test_tlp505_uncalled_predicate_fixit_flips_to_all_in():
    text = MODED_LIBRARY + "PRED reserve(nat).\nMODE reserve(OUT).\n"
    found = findings(text)
    assert [d.code for d in found] == ["TLP505"]
    fixed = apply_fixits(text, found)
    assert "MODE reserve(IN)." in fixed
    assert codes(fixed) == []


def test_tlp505_called_predicate_keeps_an_advisory_only():
    text = MODED_LIBRARY + (
        "PRED reserve(nat).\nMODE reserve(OUT).\n:- reserve(X), usenat(X).\n"
    )
    found = [d for d in findings(text) if d.code == "TLP505"]
    assert len(found) == 1
    assert all(not fixit.replacement for fixit in found[0].fixits)


# -- the seeded corpus round trip ---------------------------------------------


def test_seed_corpus_fires_one_finding_per_rule_and_fixes_clean():
    path = "examples/corpus/lint/modes.tlp"
    text = open(path).read()
    found = findings(text)
    assert sorted(d.code for d in found) == [
        "TLP501", "TLP502", "TLP503", "TLP504", "TLP505",
    ]
    fixed = apply_fixits(text, found)
    assert findings(fixed) == []
