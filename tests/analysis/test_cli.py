"""``tlp-lint`` CLI: exit codes, formats, corpus behaviour, rule config."""

import json

import pytest

from repro.analysis.cli import main

CLEAN = """\
FUNC nil.
TYPE t.
t >= nil.
PRED p(t).
p(nil).
"""

DEFECT = """\
FUNC z.
TYPE a, b.
a >= b.
b >= a.
a >= z.
PRED p(a).
p(z).
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.tlp"
    path.write_text(CLEAN)
    return path


@pytest.fixture
def defect_file(tmp_path):
    path = tmp_path / "defect.tlp"
    path.write_text(DEFECT)
    return path


def test_clean_file_exits_zero(clean_file, capsys):
    assert main([str(clean_file)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_error_findings_exit_one(defect_file, capsys):
    assert main([str(defect_file)]) == 1
    out = capsys.readouterr().out
    assert "error[TLP102]" in out


def test_missing_path_exits_two(capsys):
    assert main(["/no/such/path.tlp"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_no_arguments_exits_two(capsys):
    assert main([]) == 2


def test_bad_severity_spec_exits_two(capsys):
    assert main(["--severity", "TLP301=fatal", "x.tlp"]) == 2


def test_disable_silences_rule(defect_file, capsys):
    assert main([str(defect_file), "--disable", "TLP102"]) == 0
    assert "TLP102" not in capsys.readouterr().out


def test_severity_override_promotes_warning_to_error(tmp_path, capsys):
    path = tmp_path / "singleton.tlp"
    path.write_text(CLEAN + "PRED q(t).\nq(X) :- p(X), p(Y).\n")
    assert main([str(path)]) == 0  # TLP203 is a warning by default
    assert main([str(path), "--severity", "TLP203=error"]) == 1


def test_json_format(defect_file, capsys):
    assert main([str(defect_file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 2
    file_entry = payload["files"][0]
    assert not file_entry["ok"]
    codes = [d["code"] for d in file_entry["diagnostics"]]
    assert codes == ["TLP102", "TLP102"]
    first = file_entry["diagnostics"][0]
    assert first["line"] == 3 and "end_column" in first


def test_sarif_format_parses_and_carries_results(defect_file, capsys):
    assert main([str(defect_file), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert [r["ruleId"] for r in document["runs"][0]["results"]] == [
        "TLP102",
        "TLP102",
    ]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "TLP101" in out and "TLP301" in out and "paper:" in out


def test_directory_walk(tmp_path, capsys):
    (tmp_path / "a.tlp").write_text(CLEAN)
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.tlp").write_text(DEFECT)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "b.tlp" in out and "linted 2 files" in out


def test_seeded_corpus_defects_reported():
    """The acceptance scenario: the shipped corpus fixtures light up
    exactly the seeded rules, and errors make the exit non-zero."""
    assert main(["examples/corpus", "--format", "json"]) == 1


def test_seeded_corpus_codes(capsys):
    main(["examples/corpus", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    by_file = {
        entry["path"]: [d["code"] for d in entry["diagnostics"]]
        for entry in payload["files"]
    }
    assert by_file["examples/corpus/lint/unguarded.tlp"] == ["TLP102", "TLP102"]
    # TLP401/402 ride along on the uninhabited fixture: a predicate whose
    # argument type is empty has an empty success set, so its clause is
    # dead and calls to it always fail.
    assert by_file["examples/corpus/lint/uninhabited.tlp"] == [
        "TLP103", "TLP401", "TLP402",
    ]
    assert by_file["examples/corpus/lint/missing_filter.tlp"] == ["TLP301"]
    assert by_file["examples/corpus/lint/success_sets.tlp"] == [
        "TLP401", "TLP401", "TLP402", "TLP403", "TLP404",
    ]
    # Manifest members are linted with the shared prelude: no undeclared
    # noise, only genuine singleton warnings.
    members = [path for path in by_file if "/members/" in path]
    assert members
    for path in members:
        assert all(code == "TLP203" for code in by_file[path])


def test_manifest_members_get_shared_prelude(tmp_path, capsys):
    (tmp_path / "decls.tlp").write_text("FUNC nil.\nTYPE t.\nt >= nil.\nPRED p(t).\n")
    (tmp_path / "member.tlp").write_text("p(nil).\n")
    (tmp_path / "tlp-project.json").write_text(
        json.dumps({"include": ["member.tlp"], "shared": ["decls.tlp"]})
    )
    assert main([str(tmp_path)]) == 0
    assert "TLP201" not in capsys.readouterr().out
