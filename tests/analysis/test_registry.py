"""Rule registry: codes, selection, severity overrides, fingerprints."""

import pytest

from repro.analysis import LintConfig, default_registry
from repro.analysis.registry import Rule, RuleRegistry
from repro.checker.diagnostics import Severity


def make_rule(code, severity=Severity.WARNING):
    return Rule(
        code=code,
        slug=f"rule-{code.lower()}",
        severity=severity,
        summary=f"summary for {code}",
        paper="§0",
        check=lambda ctx: None,
    )


def test_default_registry_has_all_builtin_rules():
    codes = [rule.code for rule in default_registry()]
    assert codes == [
        "TLP101", "TLP102", "TLP103", "TLP104", "TLP105",
        "TLP201", "TLP202", "TLP203", "TLP204",
        "TLP301",
        "TLP401", "TLP402", "TLP403", "TLP404",
        "TLP501", "TLP502", "TLP503", "TLP504", "TLP505",
        "TLP601", "TLP602", "TLP603", "TLP604", "TLP605",
    ]


def test_rules_come_back_in_code_order_regardless_of_insertion():
    registry = RuleRegistry()
    registry.add(make_rule("TLP300"))
    registry.add(make_rule("TLP100"))
    registry.add(make_rule("TLP200"))
    assert [rule.code for rule in registry] == ["TLP100", "TLP200", "TLP300"]


def test_duplicate_code_rejected():
    registry = RuleRegistry()
    registry.add(make_rule("TLP100"))
    with pytest.raises(ValueError, match="duplicate"):
        registry.add(make_rule("TLP100"))


def test_disable_drops_rule_from_selection():
    config = LintConfig(disabled=frozenset({"TLP203"}))
    codes = [rule.code for rule in default_registry().selected(config)]
    assert "TLP203" not in codes
    assert "TLP301" in codes


def test_severity_override_applies_in_selection():
    config = LintConfig(severities={"TLP301": Severity.ERROR})
    selected = {r.code: r for r in default_registry().selected(config)}
    assert selected["TLP301"].severity == Severity.ERROR
    # The registry's own rule object is untouched.
    assert default_registry().get("TLP301").severity == Severity.WARNING


def test_fingerprint_is_stable_across_calls():
    registry = default_registry()
    assert registry.fingerprint(LintConfig()) == registry.fingerprint(LintConfig())


def test_fingerprint_changes_when_rule_disabled():
    registry = default_registry()
    assert registry.fingerprint(LintConfig()) != registry.fingerprint(
        LintConfig(disabled=frozenset({"TLP203"}))
    )


def test_fingerprint_changes_on_severity_override():
    registry = default_registry()
    assert registry.fingerprint(LintConfig()) != registry.fingerprint(
        LintConfig(severities={"TLP301": Severity.ERROR})
    )


def test_from_spec_parses_disable_and_overrides():
    config = LintConfig.from_spec("TLP203, TLP104", "TLP301=error")
    assert config.disabled == frozenset({"TLP203", "TLP104"})
    assert config.severity_map == {"TLP301": Severity.ERROR}


def test_from_spec_rejects_bad_severity():
    with pytest.raises(ValueError, match="bad severity override"):
        LintConfig.from_spec("", "TLP301=fatal")


def test_from_spec_rejects_malformed_disable_code():
    with pytest.raises(ValueError, match="bad rule code"):
        LintConfig.from_spec("disable=TLP103")
    with pytest.raises(ValueError, match="bad rule code"):
        LintConfig.from_spec("tlp203")


def test_config_is_hashable_and_picklable():
    import pickle

    config = LintConfig(
        disabled=frozenset({"TLP203"}), severities={"TLP301": Severity.ERROR}
    )
    assert hash(config) == hash(pickle.loads(pickle.dumps(config)))
