"""``tlp-lint``'s seed-behaviour escape hatches: ``--no-automata``,
``--no-intern``, ``--no-shared-memo`` — parity with the other entry
points (tests/service/test_automata_flags.py): findings byte-identical
with and without each flag, process-wide state restored on exit."""

import pytest

from repro.analysis.cli import main
from repro.core.automata import AUTOMATA
from repro.core.shared_memo import SHARED_MEMO
from repro.workloads import APPEND

POLY_CORPUS = "examples/corpus/lint/polytypes.tlp"

FLAGS = ("--no-automata", "--no-intern", "--no-shared-memo")


@pytest.fixture()
def append_file(tmp_path):
    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    return str(path)


@pytest.mark.parametrize("flag", FLAGS)
def test_flag_output_is_byte_identical(append_file, capsys, flag):
    baseline_code = main([append_file])
    baseline = capsys.readouterr().out
    assert main([append_file, flag]) == baseline_code
    assert capsys.readouterr().out == baseline


@pytest.mark.parametrize("flag", FLAGS)
def test_flag_parity_on_the_polytypes_corpus(capsys, flag):
    # The solver leans on the subtype engine the hardest — its findings
    # must not depend on automata/interning/memo availability.
    baseline_code = main([POLY_CORPUS])
    baseline = capsys.readouterr().out
    assert "TLP601" in baseline
    assert main([POLY_CORPUS, flag]) == baseline_code
    assert capsys.readouterr().out == baseline


def test_all_flags_together_restore_process_state(append_file, capsys):
    automata_before = AUTOMATA.enabled
    memo_before = SHARED_MEMO.enabled
    assert main([append_file, *FLAGS]) == 0
    capsys.readouterr()
    assert AUTOMATA.enabled == automata_before
    assert SHARED_MEMO.enabled == memo_before


def test_flags_restore_state_even_on_usage_error(capsys):
    automata_before = AUTOMATA.enabled
    # No input files: exit code 2 via the error path.
    assert main(["--no-automata"]) == 2
    capsys.readouterr()
    assert AUTOMATA.enabled == automata_before


def test_flags_disable_state_during_the_run(append_file, monkeypatch, capsys):
    observed = {}
    from repro.analysis import cli as cli_module

    original = cli_module._run

    def spy(arguments):
        observed["automata"] = AUTOMATA.enabled
        observed["memo"] = SHARED_MEMO.enabled
        return original(arguments)

    monkeypatch.setattr(cli_module, "_run", spy)
    assert main([append_file, "--no-automata", "--no-shared-memo"]) == 0
    capsys.readouterr()
    assert observed == {"automata": False, "memo": False}
