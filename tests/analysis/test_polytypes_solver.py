"""Unit tests for the polymorphic subtype-constraint solver
(:mod:`repro.analysis.polytypes.solver`): domain narrowing, arc
consistency along variable-variable edges, cycle collapse to equality,
unsatisfiability witnesses, and principal bounds."""

import pytest

from repro.analysis.polytypes.solver import (
    LOWER,
    MEMBER,
    UPPER,
    ConstraintGraph,
    ground_types_in,
)
from repro.core.subtype import SubtypeEngine
from repro.lang.parser import parse_file
from repro.terms.pretty import pretty
from repro.terms.term import Struct, Var

LATTICE = """\
TYPE nat, int, list.
FUNC 0, s, pred, nil, cons.
int >= nat.
nat >= 0 + s(nat).
int >= s(int) + pred(int).
list(A) >= nil + cons(A, list(A)).
"""


def atom(name):
    return Struct(name, ())


NAT = atom("nat")
INT = atom("int")
LIST_NAT = Struct("list", (NAT,))
LIST_INT = Struct("list", (INT,))
CANDIDATES = (NAT, INT, LIST_NAT, LIST_INT)


@pytest.fixture(scope="module")
def engine():
    from repro.analysis.context import LintContext

    built = LintContext.build(parse_file(LATTICE)).engine
    assert built is not None
    return built


def domains(solution, key):
    return sorted(pretty(gamma) for gamma in solution.domain_of(key))


# -- ground_types_in ----------------------------------------------------------


def test_ground_types_in_collects_variable_free_type_subterms():
    is_type = {"nat", "int", "list"}.__contains__
    term = Struct("p", (Struct("list", (Var("A"),)), LIST_NAT, INT))
    found = [pretty(g) for g in ground_types_in(term, is_type)]
    # list(A) carries a variable; list(nat) is ground and contributes
    # both itself and its nat argument.
    assert found == ["list(nat)", "nat", "int"]


def test_ground_types_in_ignores_constructor_terms():
    is_type = {"nat"}.__contains__
    term = Struct("s", (Struct("0", ()),))
    assert ground_types_in(term, is_type) == []


# -- domains and bounds -------------------------------------------------------


def test_unconstrained_node_keeps_the_full_candidate_set(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.node("var X", "X")
    solution = graph.solve()
    assert domains(solution, "var X") == ["int", "list(int)", "list(nat)", "nat"]
    assert solution.satisfiable and not solution.committed("var X")


def test_lower_bound_keeps_supertypes_only(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_lower("var X", NAT, "test")
    solution = graph.solve()
    assert domains(solution, "var X") == ["int", "nat"]


def test_upper_bound_keeps_subtypes_only(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_upper("var X", INT, "test")
    solution = graph.solve()
    assert domains(solution, "var X") == ["int", "nat"]
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_upper("var X", NAT, "test")
    assert domains(graph.solve(), "var X") == ["nat"]


def test_member_bound_keeps_inhabited_types(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_member("var X", Struct("pred", (Struct("0", ()),)), "test")
    solution = graph.solve()
    assert domains(solution, "var X") == ["int"]


def test_conflicting_bounds_produce_a_witness(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.node("var X", "X")
    graph.add_lower("var X", LIST_NAT, "produced a list")
    graph.add_upper("var X", NAT, "consumed as nat")
    solution = graph.solve()
    assert not solution.satisfiable
    [witness] = solution.witnesses
    assert witness.node.display == "X"
    described = witness.describe_bounds()
    assert "list(nat) ⊑ it" in described and "it ⊑ nat" in described


# -- edges (variable ⊑ variable) ---------------------------------------------


def test_edge_propagates_upper_bound_downward(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_edge("var X", "var Y", "X flows into Y")
    graph.add_upper("var Y", NAT, "Y consumed as nat")
    solution = graph.solve()
    assert domains(solution, "var X") == ["nat"]


def test_edge_propagates_lower_bound_upward(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_edge("var X", "var Y", "X flows into Y")
    graph.add_lower("var X", LIST_NAT, "X produced as list(nat)")
    solution = graph.solve()
    assert domains(solution, "var Y") == ["list(int)", "list(nat)"]


def test_incomparable_lower_bounds_meet_in_one_component_witness(engine):
    # nat ⊑ X, X ⊑ Y, list(nat) ⊑ Y: no candidate is above both nat and
    # list(nat), and the conflict must surface exactly once even though
    # emptiness floods both nodes of the component.
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_lower("var X", NAT, "nat into X")
    graph.add_edge("var X", "var Y", "X into Y")
    graph.add_lower("var Y", LIST_NAT, "list into Y")
    solution = graph.solve()
    assert not solution.satisfiable
    assert len(solution.witnesses) == 1
    described = solution.witnesses[0].describe_bounds()
    assert "nat ⊑ it" in described and "list(nat) ⊑ it" in described


def test_witness_marks_builtin_when_a_builtin_bound_contributes(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_lower("var X", LIST_NAT, "user bound")
    graph.add_upper("var X", INT, "=< signature", builtin=True)
    solution = graph.solve()
    [witness] = solution.witnesses
    assert witness.builtin


# -- cycles -------------------------------------------------------------------


def test_cycle_collapses_to_equality(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_edge("var X", "var Y", "X into Y")
    graph.add_edge("var Y", "var X", "Y into X")
    graph.add_upper("var Y", NAT, "Y consumed as nat")
    solution = graph.solve()
    assert solution.equalities == [("var X", "var Y")]
    # The shared domain lands on both original nodes.
    assert domains(solution, "var X") == ["nat"]
    assert domains(solution, "var Y") == ["nat"]


def test_three_cycle_via_tarjan(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_edge("var X", "var Y", "")
    graph.add_edge("var Y", "var Z", "")
    graph.add_edge("var Z", "var X", "")
    graph.add_lower("var Z", NAT, "")
    solution = graph.solve()
    assert solution.equalities == [("var X", "var Y", "var Z")]
    for key in ("var X", "var Y", "var Z"):
        assert domains(solution, key) == ["int", "nat"]


def test_deep_chain_does_not_recurse(engine):
    # A 600-node cycle: the iterative Tarjan must not hit the Python
    # recursion limit.
    graph = ConstraintGraph(engine, CANDIDATES)
    size = 600
    for index in range(size):
        graph.add_edge(f"var V{index}", f"var V{(index + 1) % size}", "")
    solution = graph.solve()
    assert len(solution.equalities) == 1
    assert len(solution.equalities[0]) == size


# -- ground-ground constraints ------------------------------------------------


def test_add_ground_decomposes_pointwise(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_ground(LIST_NAT, LIST_INT, "covariant list")
    assert graph.witnesses == []
    graph.add_ground(LIST_INT, LIST_NAT, "contravariant use")
    assert len(graph.witnesses) == 1
    assert "int ⊑ nat" in graph.witnesses[0].reason


# -- principal bounds ---------------------------------------------------------


def test_principal_and_minimal_bounds(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_lower("var X", NAT, "")
    solution = graph.solve()
    # domain {nat, int}: int is the maximum, nat the minimum.
    assert pretty(graph.principal_bound(solution, "var X")) == "int"
    assert pretty(graph.minimal_bound(solution, "var X")) == "nat"


def test_principal_bound_absent_for_incomparable_domains(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.node("var X", "X")
    solution = graph.solve()
    # Full candidate set {nat, int, list(nat), list(int)} has no
    # maximum (int and list(int) are incomparable) and no minimum.
    assert graph.principal_bound(solution, "var X") is None
    assert graph.minimal_bound(solution, "var X") is None


def test_committed_tracks_strict_narrowing(engine):
    graph = ConstraintGraph(engine, CANDIDATES)
    graph.add_lower("var X", NAT, "")
    graph.node("var Y", "Y")
    solution = graph.solve()
    assert solution.committed("var X")
    assert not solution.committed("var Y")
