"""TLP301: mode inference and the supertype→subtype flow check (§7)."""

from repro.analysis import lint_text
from repro.analysis.context import LintContext
from repro.analysis.flow import ModeInference
from repro.lang.parser import parse_file

INT_NAT = """\
FUNC zero, succ, negsucc.
TYPE nat, int.
nat >= zero + succ(nat).
int >= nat + negsucc(nat).
PRED makeint(int).
PRED usenat(nat).
"""


def infer(text):
    ctx = LintContext.build(parse_file(text))
    return ctx, ModeInference(ctx)


def tlp301(text):
    return [
        d for d in lint_text(text).diagnostics if d.code == "TLP301"
    ]


# -- mode inference -----------------------------------------------------------


def test_fact_with_ground_argument_is_out():
    _, inference = infer(INT_NAT + "makeint(zero).\n")
    assert inference.out_positions[("makeint", 1)] == {0}


def test_undefined_predicate_produces_nothing():
    ctx, inference = infer(INT_NAT + "makeint(zero).\n")
    goal = ctx.query_items or ctx.clause_items
    # usenat has no clauses: no producer positions.
    from repro.terms.term import Struct, Var

    atom = Struct("usenat", (Var("X"),))
    assert inference.producer_positions(atom) == set()
    assert inference.consumer_positions(atom) == {0}


def test_recursive_definition_reaches_fixpoint():
    text = INT_NAT + "makeint(zero).\nmakeint(succ(N)) :- makeint(N).\n"
    _, inference = infer(text)
    # succ(N) is bound when the body's makeint(N) binds N: still OUT.
    assert inference.out_positions[("makeint", 1)] == {0}


def test_unbound_head_variable_blocks_out():
    text = INT_NAT + "makeint(zero).\nmakeint(negsucc(N)) :- usenat(N).\n"
    _, inference = infer(text)
    # usenat produces nothing, so clause 2 cannot bind N: not OUT.
    assert inference.out_positions[("makeint", 1)] == set()


def test_declared_mode_wins_over_inference():
    text = (
        INT_NAT
        + "MODE usenat(OUT).\n"
        + "makeint(zero).\n"
    )
    ctx, inference = infer(text)
    from repro.terms.term import Struct, Var

    atom = Struct("usenat", (Var("X"),))
    assert inference.producer_positions(atom) == {0}


# -- the flow check -----------------------------------------------------------


def test_supertype_to_subtype_flow_in_query_flagged():
    text = INT_NAT + "makeint(zero).\n:- makeint(X), usenat(X).\n"
    found = tlp301(text)
    assert len(found) == 1
    message = found[0].message
    assert "int" in message and "nat" in message and "X" in message
    assert any("int2nat" in f.description for f in found[0].fixits)


def test_subtype_to_supertype_flow_is_safe():
    # nat value flowing into an int position: the paper's safe direction.
    text = (
        INT_NAT
        + "PRED makenat(nat).\n"
        + "makenat(zero).\n"
        + ":- makenat(X), makeint(X).\n"
    )
    assert tlp301(text) == []


def test_same_type_flow_is_safe():
    text = INT_NAT + "makeint(zero).\n:- makeint(X), makeint(X).\n"
    assert tlp301(text) == []


def test_filter_predicate_breaks_the_flow():
    # Consuming the filtered variable instead of the original is clean.
    text = (
        INT_NAT
        + "PRED int2nat(int, nat).\n"
        + "MODE int2nat(IN, OUT).\n"
        + "int2nat(zero, zero).\n"
        + "makeint(zero).\n"
        + ":- makeint(X), int2nat(X, N), usenat(N).\n"
    )
    assert tlp301(text) == []


def test_clause_head_in_position_produces_at_declared_type():
    # Caller hands makeint an int; its parts flow into a nat position.
    text = INT_NAT + "makeint(negsucc(N)) :- usenat(N).\n"
    assert len(tlp301(text)) == 1


def test_pass_skipped_without_guarded_uniform_constraints():
    # Unguarded declarations: the engine refuses, TLP301 stays silent
    # (TLP102 reports the real problem).
    text = (
        "FUNC z.\nTYPE a, b.\n"
        "a >= b.\nb >= a.\na >= z.\n"
        "PRED p(a).\nPRED q(b).\n"
        "p(z).\n:- p(X), q(X).\n"
    )
    report = lint_text(text)
    assert [d.code for d in report.diagnostics if d.code == "TLP301"] == []
    assert any(d.code == "TLP102" for d in report.diagnostics)


def test_append_program_produces_no_flow_noise():
    text = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
PRED app(list(A),list(A),list(A)).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
:- app(cons(nil,nil), nil, R).
"""
    assert tlp301(text) == []


# -- explicit MODE declarations are ground truth ------------------------------

PRODUCES_INT = INT_NAT + "makeint(zero).\nmakeint(negsucc(zero)).\n"
DANGEROUS = ":- makeint(X), usenat(X).\n"


def test_unmoded_supertype_flow_still_fires_tlp301():
    assert len(tlp301(PRODUCES_INT + DANGEROUS)) == 1


def test_declared_in_overrides_the_inferred_out():
    # Inference says makeint's position is OUT (its facts ground it),
    # but the explicit declaration claims IN — the declaration wins, so
    # the TLP301 heuristic sees no producer.  (TLP502 then reports the
    # consumption-before-production under the declared regime.)
    text = PRODUCES_INT + "MODE makeint(IN).\n" + DANGEROUS
    assert tlp301(text) == []


def test_both_endpoints_moded_defers_to_tlp502():
    text = (
        PRODUCES_INT
        + "MODE makeint(OUT).\nMODE usenat(IN).\n"
        + DANGEROUS
    )
    assert tlp301(text) == []
    codes = [d.code for d in lint_text(text).diagnostics]
    assert "TLP502" in codes


def test_single_moded_endpoint_keeps_the_heuristic():
    # Only the consumer declares a mode: the suppression needs both
    # flow endpoints declared, so the heuristic finding stays.
    text = PRODUCES_INT + "MODE usenat(IN).\n" + DANGEROUS
    assert len(tlp301(text)) == 1


def test_pure_inference_ignores_declarations_for_defined_predicates():
    from repro.analysis.context import LintContext
    from repro.lang.parser import parse_file

    from repro.terms.term import Struct, Var

    text = PRODUCES_INT + "MODE makeint(IN).\n"
    ctx = LintContext.build(parse_file(text))
    declared = ModeInference(ctx)
    pure = ModeInference(ctx, use_declared=False)
    atom = Struct("makeint", (Var("X"),))
    # With declarations honored the IN claim wins over the dataflow;
    # the pure view still sees the facts grounding the position.
    assert declared.producer_positions(atom) == set()
    assert pure.producer_positions(atom) == {0}
