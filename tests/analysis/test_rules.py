"""Per-rule positive and negative cases for the constraint-set and
clause analyses (TLP1xx / TLP2xx)."""

from repro.analysis import lint_text

LIST_PRELUDE = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
PRED app(list(A),list(A),list(A)).
"""


def codes(text, config=None):
    return [d.code for d in lint_text(text, config=config).diagnostics]


def findings(text, code):
    return [d for d in lint_text(text).diagnostics if d.code == code]


def test_clean_module_has_no_findings():
    report = lint_text(
        LIST_PRELUDE
        + "app(nil,L,L).\napp(cons(X,L),M,cons(X,N)) :- app(L,M,N).\n"
    )
    assert report.diagnostics == []
    assert report.ok


# -- TLP001 syntax ------------------------------------------------------------


def test_syntax_error_reported_as_tlp001():
    report = lint_text("FUNC nil\nTYPE t.")
    assert [d.code for d in report.diagnostics] == ["TLP001"]
    assert not report.ok


def test_lex_error_reported_as_tlp001():
    assert codes("FUNC nil? TYPE t.") == ["TLP001"]


# -- TLP101 non-uniform -------------------------------------------------------


def test_non_uniform_constraint_flagged():
    text = (
        "FUNC a.\nTYPE ids.\n"
        "ids(X, X) >= a.\n"
        "PRED p(ids(A, B)).\n"
    )
    found = [d for d in lint_text(text).diagnostics if d.code == "TLP101"]
    assert len(found) == 1
    assert "uniform" in found[0].message


def test_uniform_constraints_not_flagged():
    assert "TLP101" not in codes(LIST_PRELUDE)


# -- TLP102 unguarded ---------------------------------------------------------


def test_unguarded_cycle_flagged_with_cycle_rendered():
    text = (
        "FUNC z.\nTYPE a, b.\n"
        "a >= b.\nb >= a.\na >= z.\n"
        "PRED p(a).\n"
    )
    found = findings(text, "TLP102")
    assert found
    assert "a -> b -> a" in found[0].message or "b -> a -> b" in found[0].message


def test_guarded_recursion_not_flagged():
    # list recurses through cons: guarded, fine.
    assert "TLP102" not in codes(LIST_PRELUDE)


def test_direct_self_dependence_flagged():
    text = "FUNC z.\nTYPE t.\nt >= t.\nt >= z.\nPRED p(t).\n"
    assert "TLP102" in codes(text)


# -- TLP103 uninhabited -------------------------------------------------------


def test_uninhabited_type_flagged_with_fixit():
    text = "FUNC s.\nTYPE nat.\nnat >= s(nat).\nPRED p(nat).\n"
    found = findings(text, "TLP103")
    assert len(found) == 1
    assert "uninhabited" in found[0].message
    assert found[0].fixits  # suggests a base-case constraint


def test_inhabited_via_union_branch_not_flagged():
    text = (
        "FUNC z, s.\nTYPE nat.\n"
        "nat >= z + s(nat).\n"
        "PRED p(nat).\n"
    )
    assert "TLP103" not in codes(text)


def test_mutually_recursive_types_with_base_not_flagged():
    text = (
        "FUNC z, s.\nTYPE even, odd.\n"
        "even >= z + s(odd).\n"
        "odd >= s(even).\n"
        "PRED p(even).\n"
    )
    assert "TLP103" not in codes(text)


def test_mutually_recursive_types_without_base_flagged():
    text = (
        "FUNC s.\nTYPE even, odd.\n"
        "even >= s(odd).\n"
        "odd >= s(even).\n"
        "PRED p(even).\n"
    )
    got = codes(text)
    assert got.count("TLP103") == 2  # both types are empty


# -- TLP104 unreachable -------------------------------------------------------


def test_unreachable_constructor_flagged():
    text = (
        LIST_PRELUDE
        + "FUNC z.\nTYPE nat.\nnat >= z.\n"  # never used by any PRED
        + "app(nil,L,L).\n"
    )
    found = findings(text, "TLP104")
    assert [d.message for d in found]
    assert any("nat" in d.message for d in found)


def test_reachable_through_argument_not_flagged():
    # elist/nelist are reachable through list's union constraint.
    assert "TLP104" not in codes(LIST_PRELUDE + "app(nil,L,L).\n")


# -- TLP105 duplicates --------------------------------------------------------


def test_duplicate_func_flagged():
    text = "FUNC nil.\nFUNC nil.\nTYPE t.\nt >= nil.\nPRED p(t).\n"
    assert "TLP105" in codes(text)


def test_duplicate_pred_flagged():
    text = (
        "FUNC nil.\nTYPE t.\nt >= nil.\n"
        "PRED p(t).\nPRED p(t).\n"
    )
    assert "TLP105" in codes(text)


# -- TLP201 undeclared predicate ----------------------------------------------


def test_undeclared_predicate_flagged_with_fixit():
    text = LIST_PRELUDE + "rev(nil,nil).\n"
    found = findings(text, "TLP201")
    assert len(found) == 1
    assert "rev/2" in found[0].message
    # The fix-it is the checker-validated declaration reconstructed from
    # the success-set inference, not a generic placeholder.
    assert any(
        f.replacement == "PRED rev(elist, elist)." for f in found[0].fixits
    )


def test_undeclared_predicate_placeholder_fixit_without_inference():
    # A constraint set outside the uniform fragment has no inference;
    # the fix-it falls back to the generic placeholder.
    text = (
        "FUNC a.\nTYPE t.\n"
        "t(A) >= a.\nt(a) >= a.\n"
        "rev(a, a).\n"
    )
    found = findings(text, "TLP201")
    assert len(found) == 1
    assert any("PRED rev(T1, T2)." in f.description for f in found[0].fixits)


def test_declared_predicate_not_flagged():
    assert "TLP201" not in codes(LIST_PRELUDE + "app(nil,L,L).\n")


# -- TLP202 arity mismatch ----------------------------------------------------


def test_predicate_called_at_wrong_arity_flagged():
    text = LIST_PRELUDE + "app(nil,L,L).\n:- app(nil, nil).\n"
    found = findings(text, "TLP202")
    assert any("arity 2" in d.message and "arity 3" in d.message for d in found)


def test_function_symbol_used_at_two_arities_flagged():
    text = (
        "FUNC nil, cons.\nTYPE t.\nt >= nil + cons(t) + cons(t, t).\n"
        "PRED p(t).\n"
    )
    assert "TLP202" in codes(text)


# -- TLP203 singleton ---------------------------------------------------------


def test_singleton_variable_flagged_with_rename_fixit():
    text = LIST_PRELUDE + "app(nil,L,M).\n"
    found = findings(text, "TLP203")
    assert len(found) == 2  # L and M each occur once
    assert all(f.fixits for f in found)


def test_underscore_prefixed_singleton_not_flagged():
    text = LIST_PRELUDE + "app(nil,_L,_M).\n"
    assert "TLP203" not in codes(text)


def test_bare_underscore_not_flagged():
    text = LIST_PRELUDE + "app(nil,_,_X).\n"
    assert "TLP203" not in codes(text)


def test_underscore_skip_applies_in_queries_too():
    text = LIST_PRELUDE + ":- app(nil,_L,_R).\n"
    assert "TLP203" not in codes(text)


def test_underscore_skip_is_per_variable_not_per_clause():
    # _L is exempt, but the plain singleton M beside it still fires —
    # the skip must not silence the whole clause.
    text = LIST_PRELUDE + "app(nil,_L,M).\n"
    found = findings(text, "TLP203")
    assert len(found) == 1
    assert "M" in found[0].message and "_L" not in found[0].message


def test_underscore_prefixed_repeated_variable_not_flagged():
    # Occurring twice AND underscore-prefixed: doubly exempt, and the
    # duplicate must not un-exempt it.
    text = LIST_PRELUDE + "app(nil,_L,_L).\n"
    assert "TLP203" not in codes(text)


def test_repeated_variable_not_flagged():
    text = LIST_PRELUDE + "app(nil,L,L).\n"
    assert "TLP203" not in codes(text)


# -- TLP204 undeclared symbol -------------------------------------------------


def test_undeclared_function_symbol_flagged():
    text = LIST_PRELUDE + "app(foo,L,L).\n"
    found = findings(text, "TLP204")
    assert len(found) == 1
    assert "foo" in found[0].message


def test_type_constructor_in_object_position_flagged():
    text = LIST_PRELUDE + "app(elist,L,L).\n"
    found = findings(text, "TLP204")
    assert len(found) == 1
    assert "type constructor" in found[0].message


# -- config plumbing ----------------------------------------------------------


def test_disable_suppresses_rule():
    from repro.analysis import LintConfig

    text = LIST_PRELUDE + "app(nil,L,M).\n"
    assert "TLP203" in codes(text)
    assert "TLP203" not in codes(
        text, config=LintConfig(disabled=frozenset({"TLP203"}))
    )


def test_severity_override_changes_reported_severity():
    from repro.analysis import LintConfig
    from repro.checker.diagnostics import Severity

    text = LIST_PRELUDE + "app(nil,L,M).\n"
    config = LintConfig(severities={"TLP203": Severity.ERROR})
    report = lint_text(text, config=config)
    tlp203 = [d for d in report.diagnostics if d.code == "TLP203"]
    assert tlp203 and all(d.severity == Severity.ERROR for d in tlp203)
    assert not report.ok
