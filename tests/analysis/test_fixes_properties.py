"""Property tests for :mod:`repro.analysis.fixes`.

Two algebraic facts the fix-it gates in CI rely on:

* **non-overlapping edits commute** — a set of span fix-its whose ranges
  are pairwise disjoint produces the same text whatever order the
  diagnostics arrive in (the bottom-up application order is a pure
  implementation detail);
* **overlapping edits resolve first-wins** — when two fix-its claim the
  same range, the earlier diagnostic's replacement lands and the later
  one is dropped entirely (its edit must not partially apply).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fixes import apply_fixits, edit_for, is_machine_applicable
from repro.checker.diagnostics import Diagnostic, FixIt, Severity
from repro.lang.ast import Position

_ALPHABET = "abcdefgh"


def span_diagnostic(start: int, end: int, replacement: str) -> Diagnostic:
    """A warning whose single fix-it replaces [start, end) of line 1
    (offsets are 0-based here; positions are 1-based)."""
    position = Position(1, start + 1, end_line=1, end_column=end + 1)
    return Diagnostic(
        severity=Severity.WARNING,
        message=f"replace [{start}, {end})",
        position=position,
        code="TLP999",
        fixits=(FixIt(f"-> {replacement!r}", replacement, position),),
    )


@st.composite
def disjoint_edit_sets(draw):
    """One-line text plus span fix-its over pairwise-disjoint,
    non-touching ranges (strictly increasing boundary points, so no two
    edits share even an insertion point)."""
    text = draw(st.text(alphabet=_ALPHABET, min_size=4, max_size=60))
    # 2*pairs unique boundary points must fit in [0, len(text)].
    pairs = draw(st.integers(min_value=1, max_value=min(4, (len(text) + 1) // 2)))
    boundaries = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(text)),
            min_size=2 * pairs,
            max_size=2 * pairs,
            unique=True,
        ).map(sorted)
    )
    diagnostics = []
    for index in range(pairs):
        start, end = boundaries[2 * index], boundaries[2 * index + 1]
        # An empty replacement makes a fix-it advisory (edit_for returns
        # None), so machine edits always carry at least one character.
        replacement = draw(
            st.text(alphabet=_ALPHABET.upper(), min_size=1, max_size=5)
        )
        diagnostics.append(span_diagnostic(start, end, replacement))
    return text, diagnostics


@settings(max_examples=60, deadline=None)
@given(disjoint_edit_sets(), st.randoms())
def test_non_overlapping_fixits_commute(case, rng):
    text, diagnostics = case
    baseline = apply_fixits(text, diagnostics)
    shuffled = list(diagnostics)
    rng.shuffle(shuffled)
    assert apply_fixits(text, shuffled) == baseline


@settings(max_examples=60, deadline=None)
@given(disjoint_edit_sets())
def test_non_overlapping_fixits_match_manual_splice(case):
    text, diagnostics = case
    edits = sorted(
        edit_for(text, d, d.fixits[0]) for d in diagnostics
    )
    expected, cursor = [], 0
    for start, end, replacement in edits:
        expected.append(text[cursor:start])
        expected.append(replacement)
        cursor = end
    expected.append(text[cursor:])
    assert apply_fixits(text, diagnostics) == "".join(expected)


@settings(max_examples=60, deadline=None)
@given(
    st.text(alphabet=_ALPHABET, min_size=2, max_size=40),
    st.data(),
)
def test_overlapping_fixits_are_first_wins(text, data):
    start = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
    end = data.draw(st.integers(min_value=start + 1, max_value=len(text)))
    first = span_diagnostic(start, end, "FIRST")
    second = span_diagnostic(start, end, "SECOND")
    assert apply_fixits(text, [first, second]) == apply_fixits(text, [first])
    assert apply_fixits(text, [second, first]) == apply_fixits(text, [second])


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet=_ALPHABET, min_size=4, max_size=40), st.data())
def test_partially_overlapping_fixits_drop_the_later_edit(text, data):
    # Ranges that merely intersect (not necessarily equal) still resolve
    # first-wins: the second edit is skipped whole, never spliced.
    a = data.draw(st.integers(min_value=0, max_value=len(text) - 2))
    b = data.draw(st.integers(min_value=a + 1, max_value=len(text) - 1))
    c = data.draw(st.integers(min_value=b + 1, max_value=len(text)))
    first = span_diagnostic(a, c, "FIRST")  # [a, c) covers [b, c)
    second = span_diagnostic(b, c, "SECOND")
    assert apply_fixits(text, [first, second]) == apply_fixits(text, [first])


def test_advisory_fixits_never_edit():
    text = "PRED p(t).\n"
    advisory = Diagnostic(
        severity=Severity.WARNING,
        message="advisory only",
        position=Position(1, 1),
        fixits=(FixIt("rename the predicate"),),
    )
    assert not is_machine_applicable(text, advisory, advisory.fixits[0])
    assert apply_fixits(text, [advisory]) == text
