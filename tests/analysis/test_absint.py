"""Whole-program success-set inference: call graph, domain, fixpoint,
declaration reconstruction, and the TLP401-404 rules built on top."""

import pytest

from repro.analysis import lint_text
from repro.analysis.absint import (
    CallGraph,
    ProgramInference,
    TypeDomain,
    canonical,
    infer_text,
    truncate_depth,
)
from repro.analysis.absint.domain import MAX_MEMBERS, SuccessSet
from repro.analysis.context import LintContext
from repro.checker.frontend import check_text
from repro.lang.ast import ClauseDecl
from repro.lang.parser import parse_file, parse_term
from repro.terms.term import Struct, Var

LISTS = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A, list(A)).
list(A) >= elist + nelist(A).
"""

NATS = """\
FUNC zero, succ.
TYPE nat.
nat >= zero + succ(nat).
"""

APPEND = LISTS + """\
PRED app(list(A), list(A), list(A)).
app(nil, L, L).
app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
"""


def build(text):
    inference = infer_text(text)
    assert inference is not None
    return inference


def folded(inference, name, arity):
    return inference.success[(name, arity)].folded


def codes(text, *wanted):
    return [
        d for d in lint_text(text).diagnostics if d.code in wanted
    ]


# -- call graph ---------------------------------------------------------------


def test_call_graph_edges_and_nodes():
    source = parse_file(APPEND + "rev(nil, nil).\nrev(cons(X, L), R) :- rev(L, S), app(S, cons(X, nil), R).\n")
    graph = CallGraph.from_clauses(source.of_kind(ClauseDecl))
    assert ("app", 3) in graph.nodes
    assert ("rev", 2) in graph.nodes
    assert ("app", 3) in graph.callees(("rev", 2))
    assert ("app", 3) in graph.callees(("app", 3))  # self loop


def test_sccs_emit_callees_first():
    source = parse_file(APPEND + "rev(nil, nil).\nrev(cons(X, L), R) :- rev(L, S), app(S, cons(X, nil), R).\n")
    graph = CallGraph.from_clauses(source.of_kind(ClauseDecl))
    components = graph.sccs()
    order = {component: index for index, component in enumerate(components)}
    assert order[(("app", 3),)] < order[(("rev", 2),)]


def test_constraint_goals_are_not_call_edges():
    source = parse_file(LISTS + "PRED p(list(A)).\np(X) :- X : elist.\n")
    graph = CallGraph.from_clauses(source.of_kind(ClauseDecl))
    assert graph.callees(("p", 1)) == set()


def test_recursive_detection():
    source = parse_file(APPEND)
    graph = CallGraph.from_clauses(source.of_kind(ClauseDecl))
    assert graph.recursive((("app", 3),))
    lone = parse_file(LISTS + "PRED e(elist).\ne(nil).\n")
    lone_graph = CallGraph.from_clauses(lone.of_kind(ClauseDecl))
    assert not lone_graph.recursive((("e", 1),))


# -- the domain ---------------------------------------------------------------


def domain():
    inference = build(LISTS + NATS + "PRED d(nat).\nd(zero).\n")
    return TypeDomain(inference.constraints, inference.engine)


def test_canonical_alpha_equivalence():
    left = canonical(parse_term("cons(X, cons(Y, X))"))
    right = canonical(parse_term("cons(A, cons(B, A))"))
    assert left == right
    assert canonical(parse_term("cons(X, X)")) != canonical(
        parse_term("cons(X, Y)")
    )


def test_truncate_depth_replaces_deep_subterms_with_variables():
    deep = parse_term("succ(succ(succ(succ(zero))))")
    cut = truncate_depth(deep, 2)
    assert cut.functor == "succ"
    assert isinstance(cut.args[0].args[0], Var)
    # Within the bound the term is untouched.
    assert truncate_depth(deep, 10) == deep


def test_add_member_dedupes_by_subsumption():
    d = domain()
    members = []
    assert d.add_member(members, parse_term("list(A)"))
    # elist is an instance of list(A): no new information.
    assert not d.add_member(members, parse_term("elist"))
    assert len(members) == 1


def test_add_member_replaces_subsumed_entries():
    d = domain()
    members = [parse_term("elist")]
    assert d.add_member(members, parse_term("list(A)"))
    assert [canonical(m) for m in members] == [canonical(parse_term("list(A)"))]


def test_add_member_cap_collapses_to_top():
    d = domain()
    members = []
    # succ^k(zero) towers are pairwise incomparable observations.
    term = "zero"
    for _ in range(MAX_MEMBERS + 1):
        d.add_member(members, parse_term(term))
        term = f"succ({term})"
    assert len(members) == 1 and isinstance(members[0], Var)


def test_fold_prefers_minimal_constructor():
    d = domain()
    # {nil} folds to elist, not to the looser list(A).
    fold = d.fold([parse_term("nil")])
    assert fold == Struct("elist", ())


def test_fold_covers_all_members():
    d = domain()
    fold = d.fold([parse_term("nil"), parse_term("cons(A, list(A))")])
    assert fold is not None and fold.functor == "list"


def test_fold_singleton_and_union_fallback():
    d = domain()
    # A single member with no covering constructor folds to itself
    # (no declared type contains succ-of-a-list terms).
    assert d.fold([parse_term("succ(elist)")]) == parse_term("succ(elist)")
    # Incomparable members with no covering constructor fold to a union.
    fold = d.fold([parse_term("zero"), parse_term("nil")])
    assert fold is not None and fold.functor == "+"


def test_fold_variable_member_is_top():
    d = domain()
    assert isinstance(d.fold([Var("X")]), Var)


# -- the fixpoint -------------------------------------------------------------


def test_append_success_set():
    inference = build(APPEND)
    first, second, third = folded(inference, "app", 3)
    assert first.functor == "list"
    # Nothing constrains the other positions: they stay open.
    assert isinstance(second, Var) and isinstance(third, Var)


def test_plus_grounds_first_argument_only():
    text = NATS + "PRED plus(nat, nat, nat).\nplus(0, Y, Y).\n"
    text = NATS + (
        "PRED plus(nat, nat, nat).\n"
        "plus(zero, Y, Y).\n"
        "plus(succ(X), Y, succ(Z)) :- plus(X, Y, Z).\n"
    )
    inference = build(text)
    first, second, third = folded(inference, "plus", 3)
    assert first == Struct("nat", ())
    assert isinstance(second, Var) and isinstance(third, Var)


def test_empty_success_set_is_bottom():
    text = NATS + (
        "PRED loop(nat).\n"
        "loop(X) :- loop(X).\n"
    )
    inference = build(text)
    assert inference.success[("loop", 1)].bottom


def test_callee_bottom_propagates():
    text = NATS + (
        "PRED loop(nat).\nPRED use(nat).\n"
        "loop(X) :- loop(X).\n"
        "use(X) :- loop(X).\n"
    )
    inference = build(text)
    assert inference.success[("use", 1)].bottom


def test_widening_terminates_on_unfoldable_growth():
    # box-towers grow without any declared type covering them: only the
    # depth widening (then the iteration cap) stops the ascent.
    text = (
        "FUNC a, box.\n"
        "TYPE t.\n"
        "t >= a + box(t).\n"
        "PRED w(t).\n"
        "w(a).\n"
        "w(box(W)) :- w(W).\n"
    )
    inference = build(text)  # must not hang
    success = inference.success[("w", 1)]
    assert not success.bottom
    assert inference.iterations <= inference.max_iterations


def test_open_world_predicate_is_skipped_not_failed():
    # q is declared but has no clauses: its declaration is trusted, so
    # callers are NOT dead.
    text = NATS + (
        "PRED q(nat).\nPRED p(nat).\n"
        "p(X) :- q(X).\n"
    )
    inference = build(text)
    assert not inference.success[("p", 1)].bottom
    assert folded(inference, "p", 1)[0] == Struct("nat", ())


def test_compare_with_declaration_equivalent_and_loose():
    loose = NATS + LISTS + (
        "PRED e(list(nat)).\n"
        "e(nil).\n"
    )
    inference = build(loose)
    verdict, _details = inference.compare_with_declaration(("e", 1))
    assert verdict == "loose"
    exact = NATS + "PRED z(nat).\nz(zero).\nz(succ(X)) :- z(X).\n"
    verdict, _ = build(exact).compare_with_declaration(("z", 1))
    assert verdict in ("equivalent", "ok")


def test_member_fit_suppresses_false_incompatibility():
    # int2nat's success set folds to the union 0+succ(A), which is not
    # comparable with the declared int/nat pair positionwise — but every
    # member fits, so the declaration is NOT incompatible.
    text = open("examples/programs/arithmetic.tlp").read()
    inference = build(text)
    verdict, _ = inference.compare_with_declaration(("int2nat", 2))
    assert verdict != "incompatible"


# -- reconstruction -----------------------------------------------------------


def strip_preds(text):
    return "\n".join(
        line for line in text.splitlines()
        if not line.strip().startswith("PRED")
    ) + "\n"


def test_reconstructs_append_declaration():
    inference = build(strip_preds(APPEND))
    reconstruction = inference.reconstructions()[("app", 3)]
    assert reconstruction.validated
    assert reconstruction.line == "PRED app(list(A), list(A), list(A))."


def test_reconstructed_declarations_are_accepted_by_the_checker():
    stripped = strip_preds(APPEND)
    inference = build(stripped)
    block = "\n".join(inference.declaration_lines()) + "\n"
    module = check_text(stripped + block)
    assert module.ok, module.diagnostics.render()


def test_open_world_callee_gets_top_declaration():
    text = LISTS + (
        "rev(nil, nil).\n"
        "rev(cons(X, L), R) :- rev(L, S), app(S, cons(X, nil), R).\n"
    )
    inference = build(text)
    reconstructions = inference.reconstructions()
    assert reconstructions[("rev", 2)].defined
    app = reconstructions[("app", 3)]
    assert not app.defined and app.validated
    assert app.line == "PRED app(A, B, C)."
    # The whole reconstructed block makes the file well-typed.
    block = "\n".join(
        r.line for r in reconstructions.values()
    ) + "\n"
    assert check_text(text + block).ok


def test_every_corpus_member_reconstructs_checkably():
    """Acceptance: strip the PRED declarations from each corpus member
    (against the shared prelude) and the reconstructed block must be
    accepted by the existing well-typedness checker."""
    import pathlib

    decls = pathlib.Path("examples/corpus/decls.tlp").read_text()
    members_dir = pathlib.Path("examples/corpus/members")
    members = sorted(members_dir.glob("*.tlp"))
    assert members
    for member in members:
        body = member.read_text()
        stripped = strip_preds(decls + body)
        inference = build(stripped)
        block = "\n".join(inference.declaration_lines()) + "\n"
        module = check_text(stripped + block)
        assert module.ok, f"{member}: {module.diagnostics.render()}"


# -- the TLP4xx rules ---------------------------------------------------------

SEEDED = NATS + LISTS + (
    "PRED mk(nat).\n"
    "mk(zero).\n"
    "PRED caller(list(nat)).\n"
    "caller(L) :- mk(cons(zero, L)).\n"
)


def test_tlp402_always_failing_goal():
    found = codes(SEEDED, "TLP402")
    assert len(found) == 1
    assert "mk(cons(zero, L))" in found[0].message


def test_tlp401_dead_clause():
    found = codes(SEEDED, "TLP401")
    assert len(found) == 1
    assert "caller/1" in found[0].message


def test_tlp401_dead_head():
    text = NATS + LISTS + "PRED p(nat).\np(nil).\n"
    found = codes(text, "TLP401")
    assert len(found) == 1 and "head argument" in found[0].message


def test_tlp403_loose_declaration_with_fixit():
    text = NATS + LISTS + "PRED e(list(nat)).\ne(nil).\n"
    found = codes(text, "TLP403")
    assert len(found) == 1
    fixit = found[0].fixits[0]
    assert fixit.replacement == "PRED e(elist)."


def test_tlp404_incompatible_declaration():
    text = NATS + LISTS + "PRED p(nat).\np(nil).\n"
    found = codes(text, "TLP404")
    assert len(found) == 1
    assert "share no instances" in found[0].message


def test_clean_program_has_no_tlp4xx():
    assert codes(APPEND, "TLP401", "TLP402", "TLP403", "TLP404") == []


def test_arithmetic_examples_only_flag_the_failing_query():
    text = open("examples/programs/arithmetic.tlp").read()
    found = codes(text, "TLP401", "TLP402", "TLP403", "TLP404")
    assert [d.code for d in found] == ["TLP402"]
    assert "int2nat(pred(0)" in found[0].message


def test_modes_and_constrained_examples_are_clean():
    for path in ("examples/programs/modes.tlp", "examples/programs/constrained.tlp"):
        text = open(path).read()
        assert codes(text, "TLP401", "TLP402", "TLP403", "TLP404") == []


def test_seeded_lint_fixture_fires_every_rule():
    text = open("examples/corpus/lint/success_sets.tlp").read()
    found = codes(text, "TLP401", "TLP402", "TLP403", "TLP404")
    assert sorted(d.code for d in found) == [
        "TLP401", "TLP401", "TLP402", "TLP403", "TLP404",
    ]


def test_tlp201_fixit_carries_inferred_declaration():
    report = lint_text(strip_preds(APPEND))
    tlp201 = [d for d in report.diagnostics if d.code == "TLP201"]
    assert tlp201
    fixit = tlp201[0].fixits[0]
    assert fixit.replacement == "PRED app(list(A), list(A), list(A))."
    assert "accepted by the checker" in fixit.description


def test_rules_stay_silent_when_inference_unavailable():
    # A non-uniform constraint set falls outside the engine's fragment:
    # ctx.inference is None and the TLP4xx rules must not crash or fire.
    text = (
        "FUNC a.\n"
        "TYPE t.\n"
        "t(A) >= a.\n"
        "t(a) >= a.\n"
        "PRED p(t(a)).\n"
        "p(a).\n"
    )
    report = lint_text(text)
    assert all(not d.code.startswith("TLP4") for d in report.diagnostics)


# -- telemetry ----------------------------------------------------------------


def test_fixpoint_emits_telemetry():
    from repro.obs import METRICS

    was = METRICS.enabled
    METRICS.reset()
    METRICS.enabled = True
    try:
        build(APPEND)
        snapshot = METRICS.snapshot()
        counters = snapshot.get("counters", snapshot)
        assert any("analysis.absint" in key for key in counters)
    finally:
        METRICS.enabled = was
        METRICS.reset()


def test_from_context_requires_engine():
    source = parse_file("FUNC a.\nTYPE t.\nt(A) >= a.\nt(a) >= a.\n")
    ctx = LintContext.build(source)
    if ctx.engine is None:
        with pytest.raises(ValueError):
            ProgramInference.from_context(ctx)
    assert ctx.inference is None
