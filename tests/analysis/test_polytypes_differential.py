"""Differential pin: the TLP6xx solver is invisible on the monomorphic
fragment.

Two guarantees the solver's integration must not erode:

* **byte-identical lint** — on a variable-free program that never
  mentions a built-in constraint predicate, the linter's rendered output
  with the TLP6xx family enabled equals the output with it disabled,
  byte for byte (the solver never activates, and activation is the only
  way the family can report);
* **ground verdicts match the engine** — on ground-ground constraints
  the constraint graph's verdicts (``add_ground`` witnesses,
  ``check_member``) coincide with the deterministic subtype engine's
  ``holds``/``contains``, so compiling the monomorphic fragment through
  the solver path cannot flip a match-based verdict.
"""

import re
from pathlib import Path

import pytest

from repro import workloads
from repro.analysis import LintConfig, lint_text
from repro.analysis.polytypes import ConstraintGraph, solve_text
from repro.core.builtins import is_builtin_indicator, uses_builtin_goals
from repro.core.subtype import SubtypeEngine
from repro.lang.ast import ClauseDecl, ModeDecl, PredDecl, QueryDecl
from repro.lang.parser import parse_file
from repro.terms.pretty import pretty
from repro.terms.term import Struct, variables_of

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

TLP6XX = frozenset({"TLP601", "TLP602", "TLP603", "TLP604", "TLP605"})


def _is_monomorphic(text: str) -> bool:
    """Variable-free declarations, no built-in goals, and no predicate
    that borrows a built-in's name — the fragment the pre-solver linter
    understood completely."""
    try:
        source = parse_file(text)
    except Exception:
        return False
    for item in source.items:
        if isinstance(item, PredDecl):
            if any(variables_of(argument) for argument in item.head.args):
                return False
            if is_builtin_indicator(item.head.functor, len(item.head.args)):
                return False
        elif isinstance(item, ModeDecl):
            if is_builtin_indicator(item.name, len(item.modes)):
                return False
        elif isinstance(item, ClauseDecl):
            if is_builtin_indicator(item.head.functor, len(item.head.args)):
                return False
            if uses_builtin_goals(item.body):
                return False
        elif isinstance(item, QueryDecl):
            if uses_builtin_goals(item.body):
                return False
    return True


def monomorphic_examples():
    found = []
    for path in sorted(EXAMPLES.rglob("*.tlp")):
        text = path.read_text(encoding="utf-8")
        if _is_monomorphic(text):
            found.append(pytest.param(path, id=str(path.relative_to(EXAMPLES))))
    assert found, "the examples tree lost its monomorphic corpus"
    return found


def render(report) -> str:
    """Rendered findings with gensym names normalised: a handful of
    rules print fresh variables (``_G64``), whose numbering depends on
    the process-global counter — *any* two successive lint runs differ
    there, solver or no solver, so the differential compares modulo it."""
    lines = []
    for diagnostic in report.diagnostics:
        lines.append(str(diagnostic))
        lines.extend(f"    fix: {fixit}" for fixit in diagnostic.fixits)
    return re.sub(r"_G\d+", "_G#", "\n".join(lines))


@pytest.mark.parametrize("path", monomorphic_examples())
def test_monomorphic_lint_is_byte_identical_without_tlp6xx(path):
    text = path.read_text(encoding="utf-8")
    with_solver = lint_text(text, path=str(path))
    without = lint_text(
        text, path=str(path), config=LintConfig(disabled=TLP6XX)
    )
    assert render(with_solver) == render(without)
    assert not any(d.code in TLP6XX for d in with_solver.diagnostics)


@pytest.mark.parametrize("path", monomorphic_examples())
def test_solver_declines_monomorphic_files(path):
    # ``solve_text`` returning None is the activation gate: the family
    # cannot fire on a file the solver never looks at.
    assert solve_text(path.read_text(encoding="utf-8"), path=str(path)) is None


#: Workloads that stay inside the monomorphic fragment (APPEND and
#: LIST_LIBRARY are polymorphic — ``app``/``len`` over ``list(A)`` —
#: and belong to the solver's fragment, not this pin).
MONO_WORKLOADS = ("NATURALS_ARITHMETIC", "INSERTION_SORT")


@pytest.mark.parametrize("name", MONO_WORKLOADS)
def test_workload_lint_unchanged_by_solver(name):
    text = getattr(workloads, name)
    assert _is_monomorphic(text)
    assert render(lint_text(text)) == render(
        lint_text(text, config=LintConfig(disabled=TLP6XX))
    )


def test_ground_subtype_verdicts_match_engine():
    constraints = workloads.paper_universe()
    engine = SubtypeEngine(constraints)
    candidates = [
        Struct("nat", ()),
        Struct("int", ()),
        Struct("list", (Struct("nat", ()),)),
        Struct("list", (Struct("int", ()),)),
    ]
    for sub in candidates:
        for sup in candidates:
            graph = ConstraintGraph(engine, candidates)
            graph.add_ground(sub, sup, "differential")
            witnessed = bool(graph.witnesses)
            assert witnessed != engine.holds(sup, sub), (
                f"solver and engine disagree on "
                f"{pretty(sub)} ⊑ {pretty(sup)}"
            )


def test_ground_membership_verdicts_match_engine():
    constraints = workloads.paper_universe()
    engine = SubtypeEngine(constraints)
    types = [
        Struct("nat", ()),
        Struct("int", ()),
        Struct("list", (Struct("nat", ()),)),
    ]
    zero = Struct("0", ())
    terms = [
        zero,
        Struct("s", (zero,)),
        Struct("pred", (zero,)),
        Struct("nil", ()),
        Struct("cons", (zero, Struct("nil", ()))),
    ]
    for tau in types:
        for term in terms:
            graph = ConstraintGraph(engine, types)
            verdict = graph.check_member(tau, term, "differential")
            assert verdict == engine.contains(tau, term)
            assert bool(graph.witnesses) != verdict
