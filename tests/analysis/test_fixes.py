"""Applying machine fix-its to plain text (repro.analysis.fixes)."""

from repro.analysis.fixes import apply_fixits, edit_for, is_machine_applicable
from repro.checker.diagnostics import Diagnostic, FixIt, Severity
from repro.lang.ast import Position


def span(line, column, end_line, end_column):
    return Position(line, column, end_line=end_line, end_column=end_column)


def diagnostic(fixits, position=None):
    return Diagnostic(
        Severity.WARNING, "test finding", position or span(1, 1, 1, 2),
        code="TLP999", fixits=tuple(fixits),
    )


TEXT = "FUNC nil.\nPRED p(t).\np(nil).\n"


def test_span_fixit_replaces_exactly_its_range():
    fixit = FixIt("rename", "q", span(3, 1, 3, 2))
    assert apply_fixits(TEXT, [diagnostic([fixit])]) == (
        "FUNC nil.\nPRED p(t).\nq(nil).\n"
    )


def test_declaration_fixit_inserts_above_its_anchor():
    fixit = FixIt("declare t", "TYPE t.", Position(2, 1))
    fixed = apply_fixits(TEXT, [diagnostic([fixit])])
    assert fixed == "FUNC nil.\nTYPE t.\nPRED p(t).\np(nil).\n"


def test_declaration_fixit_falls_back_to_the_diagnostic_position():
    fixit = FixIt("declare t", "TYPE t.")
    fixed = apply_fixits(TEXT, [diagnostic([fixit], position=span(1, 1, 1, 5))])
    assert fixed.startswith("TYPE t.\nFUNC nil.")


def test_advisory_fixit_without_replacement_is_skipped():
    fixit = FixIt("think about it")
    assert not is_machine_applicable(TEXT, diagnostic([fixit]), fixit)
    assert apply_fixits(TEXT, [diagnostic([fixit])]) == TEXT


def test_spanless_non_declaration_replacement_is_advisory():
    # Nowhere safe to splice a bare term without a span.
    fixit = FixIt("use q", "q(nil)")
    assert edit_for(TEXT, diagnostic([fixit]), fixit) is None


def test_stale_fixit_beyond_the_text_is_skipped():
    fixit = FixIt("rename", "q", span(99, 1, 99, 2))
    assert edit_for(TEXT, diagnostic([fixit]), fixit) is None


def test_overlapping_edits_resolve_first_wins():
    first = FixIt("rename to q", "q", span(3, 1, 3, 2))
    second = FixIt("rewrite the clause", "r(nil).", span(3, 1, 3, 8))
    fixed = apply_fixits(
        TEXT, [diagnostic([first]), diagnostic([second])]
    )
    assert "q(nil)." in fixed and "r(nil)." not in fixed


def test_same_point_duplicate_insert_applies_once():
    fixit = FixIt("declare t", "TYPE t.", Position(2, 1))
    fixed = apply_fixits(TEXT, [diagnostic([fixit]), diagnostic([fixit])])
    assert fixed.count("TYPE t.") == 1


def test_disjoint_edits_apply_bottom_up_without_offset_drift():
    early = FixIt("rename p", "q", span(2, 6, 2, 7))
    late = FixIt("rename call", "q", span(3, 1, 3, 2))
    fixed = apply_fixits(TEXT, [diagnostic([early]), diagnostic([late])])
    assert fixed == "FUNC nil.\nPRED q(t).\nq(nil).\n"
