"""The TLP6xx typed-CLP rule family end-to-end: the seeded corpus's
exact finding set, machine fix-its and their re-lint round trips, the
``solve_text`` service API, and the family's telemetry counters."""

from pathlib import Path

import pytest

from repro import obs
from repro.analysis import LintConfig, lint_text
from repro.analysis.fixes import apply_fixits, is_machine_applicable
from repro.analysis.polytypes import solve_text

CORPUS = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "corpus"
    / "lint"
    / "polytypes.tlp"
)

TLP6XX = ("TLP601", "TLP602", "TLP603", "TLP604", "TLP605")


@pytest.fixture(scope="module")
def corpus_text():
    return CORPUS.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def corpus_report(corpus_text):
    return lint_text(corpus_text, path=str(CORPUS))


def tlp6(report):
    return [d for d in report.diagnostics if d.code in TLP6XX]


# -- the seeded corpus --------------------------------------------------------


def test_corpus_finding_set_is_exactly_the_seeded_one(corpus_report):
    found = sorted(
        (d.code, d.position.line) for d in tlp6(corpus_report)
    )
    assert found == [
        ("TLP601", 23),
        ("TLP602", 27),
        ("TLP603", 31),
        ("TLP604", 34),
        ("TLP605", 38),
    ]


def test_corpus_severities(corpus_report):
    severity = {d.code: d.severity for d in tlp6(corpus_report)}
    assert severity == {
        "TLP601": "error",
        "TLP602": "error",
        "TLP603": "error",
        "TLP604": "warning",
        "TLP605": "warning",
    }


def test_corpus_produces_no_other_new_family_noise(corpus_report):
    # The corpus is engineered so TLP6xx are the only error-severity
    # findings: the monomorphic rules must not double-report the
    # polymorphic defects.
    errors = [d.code for d in corpus_report.diagnostics if d.severity == "error"]
    assert sorted(errors) == ["TLP601", "TLP602", "TLP603"]


def test_tlp601_message_carries_both_conflicting_bounds(corpus_report):
    [d] = [d for d in tlp6(corpus_report) if d.code == "TLP601"]
    assert "nat ⊑ it" in d.message and "list(nat) ⊑ it" in d.message


def test_tlp602_blames_the_builtin_signature(corpus_report):
    [d] = [d for d in tlp6(corpus_report) if d.code == "TLP602"]
    assert "built-in" in d.message
    assert "int" in d.fixits[0].description


def test_tlp603_fix_declares_the_principal_instance(corpus_text, corpus_report):
    [d] = [d for d in tlp6(corpus_report) if d.code == "TLP603"]
    assert any(
        "PRED id(int, int)." in (f.replacement or "") for f in d.fixits
    )
    assert all(is_machine_applicable(corpus_text, d, f) for f in d.fixits)


def test_tlp604_fix_pins_the_clause_principal(corpus_text, corpus_report):
    [d] = [d for d in tlp6(corpus_report) if d.code == "TLP604"]
    assert any(
        "PRED anyp(int, nat)." in (f.replacement or "") for f in d.fixits
    )
    assert all(is_machine_applicable(corpus_text, d, f) for f in d.fixits)


def test_tlp605_fix_comments_the_shadowing_declaration_out(
    corpus_text, corpus_report
):
    [d] = [d for d in tlp6(corpus_report) if d.code == "TLP605"]
    [fixit] = d.fixits
    assert fixit.replacement == "% PRED is(nat, nat)."
    assert is_machine_applicable(corpus_text, d, fixit)


def test_corpus_machine_fixes_round_trip(corpus_text, corpus_report):
    # Apply every machine-applicable TLP6xx fix, re-lint: the fixed
    # findings clear; TLP601/TLP602 (advisory in the corpus — their
    # repair needs a filter predicate the file does not declare) stay.
    fixed = apply_fixits(corpus_text, tlp6(corpus_report))
    assert fixed != corpus_text
    residue = sorted(
        {d.code for d in lint_text(fixed).diagnostics if d.code in TLP6XX}
    )
    assert residue == ["TLP601", "TLP602"]


# -- the TLP601 filter fix-it -------------------------------------------------


FILTERABLE = """\
TYPE nat, int.
FUNC 0, s, pred, int2nat.
int >= nat.
nat >= 0 + s(nat).
int >= pred(int).
PRED makeint(int).
MODE makeint(OUT).
makeint(0).
PRED usenat(nat).
PRED sel(A, A).
sel(X, X).
:- makeint(X), sel(X, X), usenat(X).
"""


def test_tlp601_filter_fix_rewrites_the_consumer():
    report = lint_text(FILTERABLE)
    [d] = [x for x in report.diagnostics if x.code == "TLP601"]
    [fixit] = [f for f in d.fixits if f.replacement]
    assert (
        fixit.replacement
        == ":- makeint(X), sel(X, X), int2nat(X, X_nat), usenat(X_nat)."
    )
    assert is_machine_applicable(FILTERABLE, d, fixit)
    fixed = apply_fixits(FILTERABLE, [d])
    assert "int2nat(X, X_nat), usenat(X_nat)" in fixed
    assert not any(
        x.code == "TLP601" for x in lint_text(fixed).diagnostics
    )


# -- disabling ----------------------------------------------------------------


def test_family_respects_disable(corpus_text):
    config = LintConfig(disabled=frozenset(TLP6XX))
    report = lint_text(corpus_text, config=config)
    assert not tlp6(report)


# -- solve_text ---------------------------------------------------------------


def test_solve_text_reports_items_and_witnesses(corpus_text):
    solved = solve_text(corpus_text, path=str(CORPUS))
    assert solved is not None
    assert solved["candidates"] == ["int", "list(nat)", "nat"]
    by_line = {item["line"]: item for item in solved["items"]}
    assert by_line[23]["satisfiable"] is False
    assert by_line[23]["witnesses"]
    assert by_line[27]["satisfiable"] is False
    assert by_line[27]["witnesses"][0]["builtin"] is True
    assert by_line[31]["satisfiable"] is True
    # The committed rigid variable's solved domain is visible.
    [rigid] = [n for n in by_line[31]["nodes"] if n["rigid"]]
    assert sorted(rigid["domain"]) == ["int", "nat"]


def test_solve_text_declines_the_monomorphic_fragment():
    assert solve_text("TYPE t.\nFUNC a.\nt >= a.\nPRED p(t).\np(a).\n") is None


def test_solve_text_propagates_parse_errors():
    from repro.lang.parser import ParseError

    with pytest.raises(ParseError):
        solve_text("PRED p(")


# -- telemetry ----------------------------------------------------------------


def test_polytypes_telemetry_counters(corpus_text):
    was_enabled = obs.METRICS.enabled
    obs.reset()
    obs.METRICS.enabled = True
    try:
        lint_text(corpus_text)
        snapshot = obs.METRICS.snapshot()
    finally:
        obs.METRICS.enabled = was_enabled
    counters = snapshot["counters"]
    assert counters.get("analysis.polytypes.files") == 1
    assert counters.get("analysis.polytypes.owners", 0) > 0
    assert counters.get("analysis.polytypes.witnesses", 0) >= 2
    assert "analysis.polytypes.build" in snapshot["timers"]
    assert "analysis.polytypes.solve" in snapshot["timers"]
    # Every timed span also lands in the log-bucket histograms, so the
    # Prometheus exposition carries solve-time percentiles.
    assert "analysis.polytypes.build" in snapshot["histograms"]
    assert "analysis.polytypes.solve" in snapshot["histograms"]
