"""Unit tests for the telemetry registry: arithmetic, disabled no-ops."""

import threading

from repro.obs import METRICS, TelemetryRegistry
from repro.obs.registry import NULL_TIMER, TimerStat


def fresh():
    registry = TelemetryRegistry()
    registry.enable()
    return registry


# -- counters and gauges -----------------------------------------------------


def test_counter_arithmetic():
    registry = fresh()
    registry.inc("a")
    registry.inc("a")
    registry.inc("a", 5)
    registry.inc("b", -2)
    assert registry.counter("a") == 7
    assert registry.counter("b") == -2
    assert registry.counter("missing") == 0


def test_gauge_set_and_max():
    registry = fresh()
    registry.gauge("g", 3.5)
    assert registry.gauge_value("g") == 3.5
    registry.gauge("g", 1.0)
    assert registry.gauge_value("g") == 1.0
    registry.gauge_max("m", 4)
    registry.gauge_max("m", 2)
    registry.gauge_max("m", 9)
    assert registry.gauge_value("m") == 9
    assert registry.gauge_value("missing") is None


def test_timer_stat_accumulates():
    stat = TimerStat()
    stat.record(0.5)
    stat.record(1.5)
    snap = stat.snapshot()
    assert snap["count"] == 2
    assert snap["total_s"] == 2.0
    assert snap["min_s"] == 0.5
    assert snap["max_s"] == 1.5
    assert snap["mean_s"] == 1.0


def test_empty_timer_reports_zero_min():
    assert TimerStat().snapshot()["min_s"] == 0.0


def test_observe_feeds_timer_and_histogram():
    registry = fresh()
    registry.observe("subtype.holds", 0.002)
    registry.observe("subtype.holds", 0.004)
    timer = registry.timer("subtype.holds")
    assert timer["count"] == 2 and timer["min_s"] == 0.002
    histogram = registry.histogram("subtype.holds")
    assert histogram is not None
    assert histogram["count"] == 2
    assert histogram["min_s"] == 0.002 and histogram["max_s"] == 0.004
    assert registry.histogram("missing") is None


def test_snapshot_and_reset_cover_histograms():
    registry = fresh()
    registry.observe("h", 0.001)
    snap = registry.snapshot()
    assert snap["histograms"]["h"]["count"] == 1
    registry.reset()
    assert registry.histogram("h") is None
    assert registry.snapshot()["histograms"] == {}


def test_time_context_manager_records():
    registry = fresh()
    with registry.time("t"):
        pass
    with registry.time("t"):
        pass
    snap = registry.timer("t")
    assert snap is not None
    assert snap["count"] == 2
    assert snap["total_s"] >= 0.0


def test_timed_decorator():
    registry = fresh()

    @registry.timed("f")
    def f(x):
        return x + 1

    assert f(1) == 2
    assert f(2) == 3
    assert registry.timer("f")["count"] == 2
    registry.disable()
    assert f(3) == 4  # still works, just unrecorded
    assert registry.timer("f")["count"] == 2


def test_reset_zeroes_but_keeps_enabled():
    registry = fresh()
    registry.inc("a")
    registry.gauge("g", 1)
    with registry.time("t"):
        pass
    registry.reset()
    assert registry.enabled
    assert registry.counter("a") == 0
    assert registry.gauge_value("g") is None
    assert registry.timer("t") is None


# -- the disabled invariant ---------------------------------------------------


def test_disabled_records_nothing():
    registry = TelemetryRegistry()  # disabled by default
    registry.inc("a", 100)
    registry.gauge("g", 1.0)
    registry.gauge_max("m", 1.0)
    registry.observe("t", 1.0)
    snap = registry.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["timers"] == {}


def test_disabled_time_is_the_shared_null_singleton():
    registry = TelemetryRegistry()
    # Allocation-free fast path: the very same object every call.
    assert registry.time("x") is NULL_TIMER
    assert registry.time("y") is NULL_TIMER
    with registry.time("x"):
        pass
    assert registry.snapshot()["timers"] == {}


def test_process_registry_disabled_by_default():
    # The singleton itself must boot disabled (library import must not
    # start collecting).
    assert isinstance(METRICS, TelemetryRegistry)


# -- rendering and snapshots --------------------------------------------------


def test_snapshot_is_a_copy():
    registry = fresh()
    registry.inc("a")
    snap = registry.snapshot()
    snap["counters"]["a"] = 999
    assert registry.counter("a") == 1


def test_render_mentions_every_metric():
    registry = fresh()
    registry.inc("subtype.goals", 3)
    registry.gauge("sld.max_depth_reached", 7)
    with registry.time("match.match"):
        pass
    table = registry.render()
    assert "subtype.goals" in table
    assert "sld.max_depth_reached" in table
    assert "match.match" in table


def test_render_empty():
    assert TelemetryRegistry().render() == "(no telemetry recorded)"


def test_thread_safety_of_inc():
    registry = fresh()

    def worker():
        for _ in range(1000):
            registry.inc("n")

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("n") == 8000
