"""Prometheus text exposition: rendering validity and round-tripping."""

import pytest

from repro import obs
from repro.obs import TelemetryRegistry, parse_exposition, render_prometheus
from repro.obs.histogram import BUCKET_BOUNDS_S


def observed_registry():
    registry = TelemetryRegistry()
    registry.enable()
    registry.inc("files.checked", 7)
    registry.gauge("jobs", 4)
    for value in (0.5e-6, 3e-6, 3.5e-6, 0.002):
        registry.observe("subtype.holds", value)
    return registry


def test_counters_gauges_and_names_render():
    text = render_prometheus(observed_registry().snapshot())
    samples = parse_exposition(text)
    assert samples["tlp_files_checked_total"] == 7
    assert samples["tlp_jobs"] == 4
    # Dots became underscores; everything is namespaced.
    assert all(name.startswith("tlp_") for name in samples)


def test_histogram_buckets_are_cumulative_and_end_at_count():
    text = render_prometheus(observed_registry().snapshot())
    samples = parse_exposition(text)
    buckets = [
        samples[f'tlp_subtype_holds_seconds_bucket{{le="{bound:.9g}"}}']
        for bound in BUCKET_BOUNDS_S
    ]
    assert buckets == sorted(buckets), "bucket series must be cumulative"
    assert samples['tlp_subtype_holds_seconds_bucket{le="+Inf"}'] == 4
    assert samples["tlp_subtype_holds_seconds_count"] == 4
    assert samples["tlp_subtype_holds_seconds_sum"] == pytest.approx(
        0.5e-6 + 3e-6 + 3.5e-6 + 0.002
    )


def test_timer_histogram_name_collision_keeps_one_sum_count():
    """observe() feeds a timer AND a histogram under the same name; the
    exposition must emit exactly one _sum/_count pair for it (duplicate
    sample lines are invalid — parse_exposition would raise)."""
    text = render_prometheus(observed_registry().snapshot())
    assert text.count("tlp_subtype_holds_seconds_sum ") == 1
    assert text.count("tlp_subtype_holds_seconds_count ") == 1
    samples = parse_exposition(text)  # raises on duplicates
    # The timer still contributes what the histogram lacks: extrema.
    assert samples["tlp_subtype_holds_seconds_min"] == pytest.approx(0.5e-6)
    assert samples["tlp_subtype_holds_seconds_max"] == pytest.approx(0.002)


def test_labels_attach_to_every_sample():
    text = render_prometheus(
        observed_registry().snapshot(), labels={"job": "tlp", "instance": "a"}
    )
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        assert 'instance="a"' in line and 'job="tlp"' in line


def test_extra_gauges_ride_along():
    text = render_prometheus(
        TelemetryRegistry().snapshot(),
        extra_gauges={"daemon.uptime_seconds": 12.5},
    )
    assert parse_exposition(text)["tlp_daemon_uptime_seconds"] == 12.5


def test_empty_snapshot_renders_parseable_nothing():
    assert parse_exposition(render_prometheus(TelemetryRegistry().snapshot())) == {}


def test_parse_rejects_garbage_and_duplicates():
    with pytest.raises(ValueError, match="not valid exposition"):
        parse_exposition("tlp_x{unclosed 1\n")
    with pytest.raises(ValueError, match="repeats sample"):
        parse_exposition("tlp_x 1\ntlp_x 2\n")


def test_prometheus_text_helper_uses_process_registry():
    obs.METRICS.enable()
    obs.METRICS.inc("helper.check")
    samples = parse_exposition(
        obs.prometheus_text(extra_gauges={"up": 1.0})
    )
    assert samples["tlp_helper_check_total"] == 1
    assert samples["tlp_up"] == 1.0
