"""Keep the process-wide obs singletons clean between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.METRICS.disable()
    obs.TRACER.clear_sinks()
    obs.reset()
    yield
    obs.METRICS.disable()
    obs.TRACER.clear_sinks()
    obs.reset()
