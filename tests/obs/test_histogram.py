"""HistogramStat: fixed-bucket recording, quantiles, mergeability.

The load-bearing property is *merge-order invariance*: quantiles are a
pure function of the merged bucket counts plus the tracked min/max, so
folding worker snapshots in any order — or any grouping — yields the
same p50/p90/p99.  That is what lets ``run_batch`` merge process-pool
snapshots in completion order without making percentiles
nondeterministic.
"""

import itertools
import random

import pytest

from repro.obs.histogram import (
    BUCKET_BOUNDS_S,
    SCHEME,
    HistogramStat,
    bucket_index,
    summarise,
)


def test_bucket_grid_is_log2_from_one_microsecond():
    assert len(BUCKET_BOUNDS_S) == 26
    assert BUCKET_BOUNDS_S[0] == pytest.approx(1e-6)
    for lower, upper in zip(BUCKET_BOUNDS_S, BUCKET_BOUNDS_S[1:]):
        assert upper == pytest.approx(2 * lower)
    assert bucket_index(0.0) == 0
    assert bucket_index(1e-6) == 0
    assert bucket_index(1.1e-6) == 1
    assert bucket_index(1e9) == len(BUCKET_BOUNDS_S)  # overflow bucket


def test_record_tracks_count_total_extrema():
    stat = HistogramStat()
    for value in (0.001, 0.004, 0.002):
        stat.record(value)
    snapshot = stat.snapshot()
    assert snapshot["scheme"] == SCHEME
    assert snapshot["count"] == 3
    assert snapshot["total_s"] == pytest.approx(0.007)
    assert snapshot["min_s"] == pytest.approx(0.001)
    assert snapshot["max_s"] == pytest.approx(0.004)
    assert snapshot["mean_s"] == pytest.approx(0.007 / 3)


def test_empty_snapshot_is_all_zero():
    snapshot = HistogramStat().snapshot()
    assert snapshot["count"] == 0
    assert snapshot["min_s"] == 0.0
    assert snapshot["max_s"] == 0.0
    assert snapshot["p99_s"] == 0.0
    assert snapshot["buckets"] == {}


def test_quantiles_are_bucket_bounds_clamped_to_observed_range():
    stat = HistogramStat()
    # 99 fast samples in the 1-2µs bucket, one slow outlier.
    for _ in range(99):
        stat.record(1.5e-6)
    stat.record(0.5)
    snapshot = stat.snapshot()
    # p50/p90 land in the fast bucket: upper bound 2µs, but clamped no
    # lower than the observed minimum.
    assert snapshot["p50_s"] == pytest.approx(2e-6)
    assert snapshot["p90_s"] == pytest.approx(2e-6)
    # p99 bound would be the outlier's bucket bound; clamped to max.
    assert snapshot["p99_s"] <= snapshot["max_s"] + 1e-12
    assert snapshot["p99_s"] >= snapshot["p50_s"]


def test_single_sample_quantiles_collapse_to_the_sample():
    stat = HistogramStat()
    stat.record(0.003)
    snapshot = stat.snapshot()
    assert snapshot["p50_s"] == pytest.approx(0.003)
    assert snapshot["p99_s"] == pytest.approx(0.003)


def shard(seed, samples=200):
    rng = random.Random(seed)
    stat = HistogramStat()
    for _ in range(samples):
        stat.record(rng.uniform(1e-6, 0.05))
    return stat.snapshot()


def test_merge_is_associative_and_commutative():
    """Every permutation AND grouping of shard merges yields the same
    summary — the property that makes pool-completion-order irrelevant."""
    shards = [shard(seed) for seed in range(5)]
    summaries = set()
    for order in itertools.permutations(range(5)):
        merged = HistogramStat()
        for index in order:
            merged.merge(shards[index])
        snapshot = merged.snapshot()
        summaries.add(
            (
                snapshot["count"],
                round(snapshot["total_s"], 12),
                snapshot["min_s"],
                snapshot["max_s"],
                snapshot["p50_s"],
                snapshot["p90_s"],
                snapshot["p99_s"],
            )
        )
    assert len(summaries) == 1
    # Tree-shaped grouping (merge of merges) matches the linear fold.
    left = HistogramStat.from_snapshot(shards[0])
    left.merge(shards[1])
    right = HistogramStat.from_snapshot(shards[2])
    right.merge(shards[3])
    right.merge(shards[4])
    left.merge(right.snapshot())
    tree = left.snapshot()
    linear = HistogramStat()
    for piece in shards:
        linear.merge(piece)
    expected = linear.snapshot()
    for key, value in expected.items():
        if key in ("total_s", "mean_s"):  # float summation order noise
            assert tree[key] == pytest.approx(value)
        else:
            assert tree[key] == value


def test_merge_of_empty_snapshot_changes_nothing():
    stat = HistogramStat()
    stat.record(0.002)
    before = stat.snapshot()
    stat.merge(HistogramStat().snapshot())
    assert stat.snapshot() == before


def test_merge_foreign_scheme_folds_moments_only():
    stat = HistogramStat()
    stat.record(0.002)
    stat.merge(
        {
            "scheme": "someone-elses-grid",
            "count": 3,
            "total_s": 0.3,
            "min_s": 0.05,
            "max_s": 0.2,
            "buckets": {"0": 3},
        }
    )
    snapshot = stat.snapshot()
    assert snapshot["count"] == 4
    assert snapshot["max_s"] == pytest.approx(0.2)
    # Foreign buckets must NOT be folded into our grid.
    assert sum(snapshot["buckets"].values()) == 1


def test_from_snapshot_round_trips():
    original = shard(42)
    assert HistogramStat.from_snapshot(original).snapshot() == original


def test_summarise_drops_buckets():
    summary = summarise(shard(7))
    assert "buckets" not in summary
    assert summary["count"] == 200
    assert summary["p50_s"] <= summary["p90_s"] <= summary["p99_s"]
