"""Pipeline instrumentation: counters fire, events nest, and —
critically — observability changes no verdicts (the differential half of
the < 5% overhead contract)."""

from repro import check_text, obs
from repro.core import (
    Matcher,
    NaiveSubtypeProver,
    SubtypeEngine,
    TypedInterpreter,
)
from repro.lang import parse_term as T
from repro.workloads import load, nat_list, paper_universe

APPEND_QUERY_SOURCE = """
FUNC nil, cons, foo.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A, list(A)).
list(A) >= elist + nelist(A).
PRED app(list(A), list(A), list(A)).
app(nil, L, L).
app(cons(X, L), M, cons(X, N)) :- app(L, M, N).
:- app(cons(foo, nil), cons(foo, nil), X).
"""


def run_pipeline():
    """One fixed pass over every instrumented subsystem; returns verdicts."""
    cset = paper_universe()
    engine = SubtypeEngine(cset)
    verdicts = [
        engine.holds(T("nat"), T("succ(succ(0))")),
        engine.holds(T("nat"), T("pred(0)")),
        engine.holds(T("list(A)"), T("cons(foo,nil)")),
    ]
    matcher = Matcher(cset)
    verdicts.append(str(matcher.match(T("list(nat)"), nat_list(3))))
    naive = NaiveSubtypeProver(cset, max_depth=10, step_limit=4_000)
    verdicts.append(naive.holds(T("nat"), T("succ(0)")))
    verdicts.append(naive.holds(T("nat"), T("pred(0)")))
    module = check_text(APPEND_QUERY_SOURCE)
    verdicts.append(module.ok)
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)
    result = interpreter.run(module.queries[0], max_answers=4)
    verdicts.append(sorted(str(answer) for answer in result.answers))
    verdicts.append(result.consistent)
    verdicts.append(result.resolvents_checked)
    return verdicts


def test_observability_changes_no_verdicts():
    baseline = run_pipeline()
    with obs.collect():
        observed = run_pipeline()
    again = run_pipeline()  # after restore
    assert observed == baseline
    assert again == baseline


def test_counters_cover_every_subsystem():
    with obs.collect() as (metrics, _):
        run_pipeline()
    counters = metrics.snapshot()["counters"]
    for name in (
        "subtype.goals",
        "subtype.true",
        "subtype.false",
        "match.calls",
        "naive.goals",
        "naive.unknown",
        "sld.runs",
        "sld.steps",
        "checker.modules_checked",
        "checker.clauses_checked",
        "typed.queries",
        "typed.resolvents_checked",
    ):
        assert counters.get(name, 0) > 0, f"counter {name} never fired"
    timers = metrics.snapshot()["timers"]
    for name in ("subtype.holds", "match.match", "checker.check_source", "typed.query"):
        assert name in timers, f"timer {name} never fired"


def test_trace_event_kinds_and_nesting():
    with obs.collect() as (_, sink):
        run_pipeline()
    kinds = {event.kind for event in sink.events}
    assert {"subtype_goal", "match_call", "sld_step", "resolvent_check", "phase"} <= kinds
    by_id = {event.span_id for event in sink.events}
    assert len(by_id) == len(sink.events)  # every event a fresh span id
    # SLD steps of the typed query nest under its typed_query phase.
    phases = [e for e in sink.events if e.kind == "phase" and e.name == "typed_query"]
    assert phases
    steps = [e for e in sink.events if e.kind == "sld_step"]
    assert steps
    assert any(step.parent_id == phase.span_id for step in steps for phase in phases)


def test_subtype_goal_events_carry_results():
    with obs.collect() as (_, sink):
        SubtypeEngine(paper_universe()).holds(T("nat"), T("succ(0)"))
        SubtypeEngine(paper_universe()).holds(T("nat"), T("pred(0)"))
    goals = [e for e in sink.events if e.kind == "subtype_goal"]
    assert [goal.result for goal in goals] == [True, False]
    assert goals[0].supertype == "nat"
    assert goals[0].subtype == "succ(0)"
    assert goals[1].reason == "no_refutation"
    assert all(goal.dur is not None for goal in goals)


def test_naive_events_carry_exhaustion_reason():
    with obs.collect() as (metrics, sink):
        prover = NaiveSubtypeProver(paper_universe(), max_depth=8, step_limit=4_000)
        verdict = prover.holds_detailed(T("nat"), T("pred(0)"))
    assert verdict.verdict is None
    [goal] = [e for e in sink.events if e.kind == "subtype_goal"]
    assert goal.engine == "naive"
    assert goal.result is None
    assert goal.reason == verdict.exhaustion in ("depth", "steps")
    counters = metrics.snapshot()["counters"]
    assert counters["naive.unknown"] == 1
    assert counters[f"naive.exhausted_{verdict.exhaustion}"] == 1


def test_cache_probe_hits_after_memoisation():
    with obs.collect() as (_, sink):
        engine = SubtypeEngine(paper_universe())
        engine.contains(T("nat"), T("succ(succ(0))"))
        engine.contains(T("nat"), T("succ(succ(0))"))  # memoised now
    probes = [e for e in sink.events if e.kind == "cache_probe"]
    assert any(probe.hit for probe in probes)
    assert any(not probe.hit for probe in probes)


def test_summary_round_trips_through_json():
    import json

    with obs.collect():
        run_pipeline()
    data = json.loads(json.dumps(obs.summary()))
    assert data["counters"]["subtype.goals"] > 0
