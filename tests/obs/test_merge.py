"""TelemetryRegistry.merge_snapshot: the worker-pool aggregation path."""

import threading

from repro.obs import TelemetryRegistry
from repro.obs.registry import TimerStat


def observed(seed):
    registry = TelemetryRegistry()
    registry.enable()
    registry.inc("files", seed)
    registry.inc("shared", 1)
    registry.gauge("depth", float(seed))
    for _ in range(seed):
        registry.observe("span", 0.5)
    return registry


def test_counters_add_gauges_max_timers_fold():
    main = observed(2)
    main.merge_snapshot(observed(5).snapshot())
    assert main.counter("files") == 7
    assert main.counter("shared") == 2
    assert main.gauge_value("depth") == 5.0
    span = main.timer("span")
    assert span["count"] == 7
    assert span["total_s"] == 7 * 0.5
    assert span["max_s"] == 0.5


def test_merge_into_empty_registry_creates_everything():
    main = TelemetryRegistry()
    main.enable()
    main.merge_snapshot(observed(3).snapshot())
    assert main.counter("files") == 3
    assert main.timer("span")["count"] == 3


def test_merge_is_a_noop_while_disabled():
    main = TelemetryRegistry()
    main.merge_snapshot(observed(3).snapshot())
    assert main.counter("files") == 0
    assert main.timer("span") is None


def test_merge_tolerates_partial_snapshots():
    main = TelemetryRegistry()
    main.enable()
    main.merge_snapshot({"counters": {"only": 1}})
    main.merge_snapshot({})
    assert main.counter("only") == 1


def test_timerstat_merge_keeps_max_and_counts():
    stat = TimerStat()
    stat.record(0.1)
    stat.merge({"total_s": 0.9, "count": 3, "max_s": 0.7, "min_s": 0.05})
    snapshot = stat.snapshot()
    assert snapshot["count"] == 4
    assert abs(snapshot["total_s"] - 1.0) < 1e-9
    assert snapshot["max_s"] == 0.7
    assert snapshot["min_s"] == 0.05


def test_merging_an_empty_snapshot_does_not_clobber_min():
    """An idle worker ships min_s=0.0; folding it in must not drag the
    coordinator's real minimum down to zero."""
    stat = TimerStat()
    stat.record(0.3)
    stat.merge(TimerStat().snapshot())
    assert stat.snapshot()["min_s"] == 0.3
    main = TelemetryRegistry()
    main.enable()
    main.observe("span", 0.3)
    idle = TelemetryRegistry()
    idle.enable()
    main.merge_snapshot(idle.snapshot())
    assert main.timer("span")["min_s"] == 0.3
    assert main.histogram("span")["min_s"] == 0.3


def test_histograms_fold_through_merge_snapshot():
    main = observed(2)
    main.merge_snapshot(observed(5).snapshot())
    merged = main.histogram("span")
    assert merged["count"] == 7
    assert sum(merged["buckets"].values()) == 7
    assert merged["p50_s"] >= 0.5  # every sample sat in the 0.5s bucket


def test_concurrent_increments_and_merges_lose_nothing():
    """Thread-pool semantics: direct inc() from many threads plus
    snapshot merges from 'workers' — the lock must serialise both."""
    main = TelemetryRegistry()
    main.enable()

    def worker():
        local = TelemetryRegistry()
        local.enable()
        for _ in range(500):
            main.inc("direct")
            local.inc("shipped")
        main.merge_snapshot(local.snapshot())

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert main.counter("direct") == 8 * 500
    assert main.counter("shipped") == 8 * 500
