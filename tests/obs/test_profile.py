"""SpanProfiler/ProfileReport: self vs cumulative time, collapsed stacks.

The report's invariant — per-name self times partition the profiled
wall time exactly (children subtracted once each, gaps credited to the
parent) — is what backs the ``tlp-check --profile`` acceptance gate.
"""

import pytest

from repro import obs
from repro.obs.events import PhaseEvent


def span(tracer, name, body=None):
    handle = tracer.begin()
    if body is not None:
        body()
    tracer.end(handle, PhaseEvent, name=name)


def test_nested_spans_split_self_and_cumulative():
    profiler = obs.profile_spans()
    try:
        root = obs.TRACER.begin()
        inner = obs.TRACER.begin()
        obs.TRACER.end(inner, PhaseEvent, name="child")
        obs.TRACER.end(root, PhaseEvent, name="root")
    finally:
        obs.TRACER.remove_sink(profiler)
    report = profiler.report()
    assert report.span_count == 2
    assert report.calls == {"root": 1, "child": 1}
    # Parent cumulative covers the child; parent self excludes it.
    assert report.cumulative_s["root"] >= report.cumulative_s["child"]
    assert report.self_s["root"] == pytest.approx(
        report.cumulative_s["root"] - report.cumulative_s["child"]
    )
    # Self times partition the root span: 100% coverage by construction.
    assert report.total_self_s == pytest.approx(report.wall_s)
    assert report.coverage == pytest.approx(1.0)


def test_collapsed_stacks_carry_ancestry_paths():
    profiler = obs.profile_spans()
    try:
        root = obs.TRACER.begin()
        mid = obs.TRACER.begin()
        leaf = obs.TRACER.begin()
        for _ in range(2000):
            pass
        obs.TRACER.end(leaf, PhaseEvent, name="leaf")
        obs.TRACER.end(mid, PhaseEvent, name="mid")
        obs.TRACER.end(root, PhaseEvent, name="root")
    finally:
        obs.TRACER.remove_sink(profiler)
    report = profiler.report()
    paths = {line.rsplit(" ", 1)[0] for line in report.collapsed_lines()}
    assert "root;mid;leaf" in paths
    for line in report.collapsed_lines():
        weight = line.rsplit(" ", 1)[1]
        assert int(weight) > 0  # zero-weight frames are dropped


def test_orphan_spans_promote_to_roots():
    """A span whose parent was never captured (profiler attached
    mid-flight) counts as a root rather than vanishing."""
    profiler = obs.SpanProfiler()
    profiler.emit(
        PhaseEvent(span_id=7, parent_id=99, ts=0.0, dur=0.5, name="orphan")
    )
    report = profiler.report()
    assert report.wall_s == pytest.approx(0.5)
    assert report.collapsed == {"orphan": pytest.approx(0.5)}


def test_instantaneous_events_are_ignored():
    profiler = obs.SpanProfiler()
    profiler.emit(PhaseEvent(span_id=1, parent_id=None, ts=0.0, dur=None, name="p"))
    assert profiler.records == []
    assert profiler.report().render_table() == "(no spans profiled)"


def test_render_table_and_json_agree():
    profiler = obs.profile_spans()
    try:
        span(obs.TRACER, "alpha")
        span(obs.TRACER, "alpha")
        span(obs.TRACER, "beta")
    finally:
        obs.TRACER.remove_sink(profiler)
    report = profiler.report()
    table = report.render_table()
    assert "span profile: 3 spans" in table
    assert "alpha" in table and "beta" in table
    payload = report.to_json()
    assert payload["spans"] == 3
    assert payload["by_name"]["alpha"]["calls"] == 2
    assert payload["coverage"] == pytest.approx(report.coverage)


def test_clear_drops_collected_spans():
    profiler = obs.profile_spans()
    try:
        span(obs.TRACER, "x")
        profiler.clear()
        span(obs.TRACER, "y")
    finally:
        obs.TRACER.remove_sink(profiler)
    assert profiler.report().calls == {"y": 1}
