"""The disabled-instrumentation overhead contract.

``SubtypeEngine.holds`` pays exactly one flag check before dispatching to
``_holds_core`` (the seed decision procedure).  This micro-benchmark pins
that cost below 5% on the subtype hot loop.  Timing is interleaved and
best-of-N to shrug off scheduler noise; set ``REPRO_SKIP_OVERHEAD_GUARD=1``
to skip on loaded/shared machines.
"""

import os
import time

import pytest

from repro import obs
from repro.core import SubtypeEngine
from repro.lang import parse_term as T
from repro.workloads import deep_nat, paper_universe

ROUNDS = 9
CALLS_PER_ROUND = 12


def _best_time(callable_, calls=CALLS_PER_ROUND):
    start = time.perf_counter()
    for _ in range(calls):
        callable_()
    return time.perf_counter() - start


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_OVERHEAD_GUARD") == "1",
    reason="REPRO_SKIP_OVERHEAD_GUARD=1",
)
def test_disabled_overhead_below_five_percent():
    assert not obs.enabled()  # conftest guarantees this
    # memoize=False and automata=False so every call performs the full
    # ground AND-OR evaluation — realistic per-call work, nothing
    # amortised away (the automaton would answer from its pair table in
    # ~µs, leaving nothing to measure the flag check against).
    engine = SubtypeEngine(paper_universe(), memoize=False, automata=False)
    nat = T("nat")
    term = deep_nat(400)
    assert engine.holds(nat, term) is True  # warm-up + correctness

    def instrumented():
        engine.holds(nat, term)

    def seed():
        engine._holds_core(nat, term)

    best_instrumented = float("inf")
    best_seed = float("inf")
    for _ in range(ROUNDS):
        best_seed = min(best_seed, _best_time(seed))
        best_instrumented = min(best_instrumented, _best_time(instrumented))
    ratio = best_instrumented / best_seed
    assert ratio < 1.05, (
        f"disabled instrumentation overhead {ratio:.3f}x "
        f"(instrumented {best_instrumented * 1e6:.0f}µs vs seed {best_seed * 1e6:.0f}µs)"
    )


def test_disabled_observe_allocates_no_histograms():
    """The histogram layer must ride the same single-flag fast path:
    while disabled, observe() must not create timer OR histogram state
    (an allocation per call would defeat the <5% contract)."""
    assert not obs.METRICS.enabled
    for _ in range(100):
        obs.METRICS.observe("hot.span", 1e-6)
    snapshot = obs.METRICS.snapshot()
    assert snapshot["timers"] == {}
    assert snapshot["histograms"] == {}
    assert obs.METRICS.histogram("hot.span") is None
