"""Unit tests for the tracer: span nesting, sinks, JSONL round-trips."""

import io
import json

from repro import obs
from repro.obs import (
    CacheProbeEvent,
    JsonlSink,
    MemorySink,
    PhaseEvent,
    SubtypeGoalEvent,
    Tracer,
    render_tree,
)
from repro.obs.trace import _NULL_SPAN


def fresh_tracer():
    tracer = Tracer()
    sink = MemorySink()
    tracer.add_sink(sink)
    return tracer, sink


# -- span arithmetic -----------------------------------------------------------


def test_span_ids_are_fresh_and_sequential():
    tracer, sink = fresh_tracer()
    tracer.point(PhaseEvent, name="a")
    tracer.point(PhaseEvent, name="b")
    ids = [event.span_id for event in sink.events]
    assert len(set(ids)) == 2
    assert ids == sorted(ids)


def test_point_event_has_no_duration():
    tracer, sink = fresh_tracer()
    tracer.point(CacheProbeEvent, cache="c", hit=True)
    [event] = sink.events
    assert event.dur is None
    assert event.kind == "cache_probe"


def test_span_nesting_via_parent_ids():
    tracer, sink = fresh_tracer()
    outer = tracer.begin()
    inner = tracer.begin()
    tracer.point(PhaseEvent, name="leaf")
    tracer.end(inner, PhaseEvent, name="inner")
    tracer.end(outer, PhaseEvent, name="outer")

    by_name = {event.name: event for event in sink.events}
    assert by_name["outer"].parent_id is None
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["leaf"].parent_id == by_name["inner"].span_id
    assert by_name["inner"].dur is not None
    assert by_name["outer"].dur >= by_name["inner"].dur


def test_span_context_manager_nests():
    tracer, sink = fresh_tracer()
    with tracer.span("outer"):
        with tracer.span("inner", detail="d"):
            pass
    inner, outer = sink.events  # inner closes first
    assert inner.name == "inner" and inner.detail == "d"
    assert inner.parent_id == outer.span_id


def test_mismatched_end_is_tolerated():
    tracer, sink = fresh_tracer()
    a = tracer.begin()
    b = tracer.begin()
    tracer.end(a, PhaseEvent, name="a")  # out of order
    tracer.end(b, PhaseEvent, name="b")
    assert tracer.current_span() is None
    assert len(sink.events) == 2


def test_enabled_tracks_sinks():
    tracer = Tracer()
    assert not tracer.enabled
    sink = MemorySink()
    tracer.add_sink(sink)
    assert tracer.enabled
    tracer.remove_sink(sink)
    assert not tracer.enabled


def test_disabled_span_is_shared_null_manager():
    tracer = Tracer()
    assert tracer.span("x") is _NULL_SPAN
    assert tracer.span("y") is _NULL_SPAN
    with tracer.span("x"):
        pass
    assert tracer.emitted == 0


def test_reset_restarts_ids():
    tracer, sink = fresh_tracer()
    tracer.point(PhaseEvent, name="a")
    tracer.reset()
    tracer.point(PhaseEvent, name="b")
    assert sink.events[-1].span_id == 0
    assert tracer.emitted == 1


# -- sinks --------------------------------------------------------------------


def test_jsonl_round_trip():
    tracer = Tracer()
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    tracer.add_sink(sink)
    handle = tracer.begin()
    tracer.point(CacheProbeEvent, cache="memo", hit=False)
    tracer.end(
        handle,
        SubtypeGoalEvent,
        supertype="nat",
        subtype="succ(0)",
        engine="strategy",
        result=True,
    )
    lines = buffer.getvalue().splitlines()
    assert sink.lines_written == 2 == len(lines)
    decoded = [json.loads(line) for line in lines]
    assert decoded[0]["kind"] == "cache_probe"
    assert decoded[1]["kind"] == "subtype_goal"
    assert decoded[1]["supertype"] == "nat"
    assert decoded[1]["result"] is True
    for payload in decoded:
        assert isinstance(payload["span_id"], int)
        assert "parent_id" in payload and "ts" in payload and "dur" in payload
    # The probe was emitted inside the open subtype span.
    assert decoded[0]["parent_id"] == decoded[1]["span_id"]


def test_render_tree_indents_children():
    tracer, sink = fresh_tracer()
    with tracer.span("root"):
        tracer.point(PhaseEvent, name="child")
    text = render_tree(sink.events)
    lines = text.splitlines()
    assert lines[0].startswith("phase name=root")
    assert lines[1].startswith("  phase name=child")


def test_render_tree_promotes_orphans():
    tracer, sink = fresh_tracer()
    with tracer.span("invisible") as handle:
        tracer.point(PhaseEvent, name="orphan")
        # Drop the closing event by detaching before the span ends.
        tracer.remove_sink(sink)
    text = render_tree(sink.events)
    assert text.splitlines()[0].startswith("phase name=orphan")


def test_trace_file_survives_a_raising_operation(tmp_path):
    """Regression: an exception mid-trace used to leave the file handle
    open (and, without line flushing, truncated).  trace_to_path +
    close_sinks in a finally must leave a complete, closed JSONL file."""
    trace_path = tmp_path / "crash.jsonl"
    sink = obs.trace_to_path(str(trace_path))
    try:
        with obs.TRACER.span("doomed"):
            obs.TRACER.point(PhaseEvent, name="before-crash")
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    finally:
        obs.TRACER.close_sinks()
    assert sink.closed
    assert sink.stream.closed  # owns_stream: the handle was released
    assert not obs.TRACER.enabled
    lines = trace_path.read_text().splitlines()
    # Everything made it to disk — including the span closed by the
    # context manager's unwind — and every line parses.
    assert [json.loads(line)["name"] for line in lines] == [
        "before-crash",
        "doomed",
    ]


def test_closed_jsonl_sink_ignores_further_emits():
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    tracer = Tracer()
    tracer.add_sink(sink)
    tracer.point(PhaseEvent, name="kept")
    sink.close()
    tracer.point(PhaseEvent, name="dropped")
    assert sink.lines_written == 1
    assert "dropped" not in buffer.getvalue()
    # Borrowed stream: flushed but left open.
    assert not buffer.closed


def test_close_is_idempotent_and_tolerates_dead_streams():
    buffer = io.StringIO()
    sink = JsonlSink(buffer, owns_stream=True)
    sink.close()
    sink.close()  # second close must be a no-op
    assert buffer.closed
    dead = io.StringIO()
    dead.close()
    already_dead = JsonlSink(dead, owns_stream=True)
    already_dead.close()  # flush raises ValueError internally; swallowed


def test_close_sinks_closes_every_sink_and_disables():
    tracer = Tracer()
    first, second = io.StringIO(), io.StringIO()
    a = JsonlSink(first)
    b = JsonlSink(second)
    tracer.add_sink(a)
    tracer.add_sink(b)
    tracer.close_sinks()
    assert a.closed and b.closed
    assert not tracer.enabled
    tracer.point(PhaseEvent, name="late")
    assert first.getvalue() == second.getvalue() == ""


# -- module-level conveniences -------------------------------------------------


def test_collect_context_manager_restores_state():
    assert not obs.METRICS.enabled
    with obs.collect() as (metrics, sink):
        assert metrics.enabled
        assert obs.TRACER.enabled
        obs.TRACER.point(PhaseEvent, name="x")
    assert not obs.METRICS.enabled
    assert not obs.TRACER.enabled
    assert [event.name for event in sink.events] == ["x"]


def test_summary_includes_trace_counter():
    with obs.collect():
        obs.METRICS.inc("a")
        obs.TRACER.point(PhaseEvent, name="x")
    data = obs.summary()
    assert data["counters"]["a"] == 1
    assert data["trace_events_emitted"] == 1
