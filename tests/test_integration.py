"""End-to-end integration tests: source text → frontend → typed execution.

These tie every layer together the way a user would: the concrete syntax
in, answers out, with the type system active throughout.
"""

import pytest

from repro import TypedInterpreter, check_text, pretty
from repro.lp import Query
from repro.terms import Var


def run_file(source, max_answers=10):
    """Check ``source`` and execute all its queries; return the module and
    the list of per-query results."""
    module = check_text(source)
    assert module.ok, module.diagnostics.render()
    checker = module.moded_checker or module.checker
    interpreter = TypedInterpreter(checker, module.program, check_program=False)
    results = [
        interpreter.run(query, max_answers=max_answers, check_query=False)
        for query in module.queries
    ]
    return module, results


def answers_of(result, variable):
    return [pretty(answer.apply(Var(variable))) for answer in result.answers]


def test_append_pipeline():
    module, results = run_file(
        """
        FUNC nil, cons.
        TYPE elist, nelist, list.
        elist >= nil.
        nelist(A) >= cons(A,list(A)).
        list(A) >= elist + nelist(A).
        PRED app(list(A),list(A),list(A)).
        app(nil,L,L).
        app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
        :- app(cons(nil,nil), cons(nil,nil), R).
        :- app(X, Y, cons(nil, nil)).
        """
    )
    assert answers_of(results[0], "R") == ["cons(nil, cons(nil, nil))"]
    assert len(results[1].answers) == 2
    assert all(result.consistent for result in results)


def test_arithmetic_pipeline():
    _, results = run_file(
        """
        FUNC 0, succ, pred.
        TYPE nat, unnat, int.
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        PRED plus(nat,nat,nat).
        plus(0,N,N).
        plus(succ(M),N,succ(K)) :- plus(M,N,K).
        PRED fib(nat,nat).
        fib(0,0).
        fib(succ(0),succ(0)).
        fib(succ(succ(N)),R) :- fib(succ(N),A), fib(N,B), plus(A,B,R).
        :- fib(succ(succ(succ(succ(succ(0))))), R).
        """
    )
    # fib(5) = 5.
    assert answers_of(results[0], "R") == ["succ(succ(succ(succ(succ(0)))))"]
    assert results[0].consistent


def test_moded_pipeline_executes():
    module, results = run_file(
        """
        FUNC 0, succ, pred.
        TYPE nat, unnat, int.
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        PRED produce(nat).
        MODE produce(OUT).
        produce(succ(0)).
        produce(0).
        PRED consume(int).
        MODE consume(IN).
        consume(0).
        consume(succ(0)).
        consume(pred(0)).
        PRED nat2int(nat, int).
        MODE nat2int(IN, OUT).
        nat2int(X, X).
        :- produce(X), nat2int(X, Y), consume(Y).
        """
    )
    assert module.moded_checker is not None
    result = results[0]
    assert len(result.answers) == 2
    assert result.consistent, result.violations


def test_polymorphic_instantiation_per_query():
    # The same predicate used at two instantiations in one file.
    _, results = run_file(
        """
        FUNC nil, cons, 0, succ, pred.
        TYPE elist, nelist, list, nat, unnat, int.
        elist >= nil.
        nelist(A) >= cons(A,list(A)).
        list(A) >= elist + nelist(A).
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        PRED len(list(A),nat).
        len(nil,0).
        len(cons(X,L),succ(N)) :- len(L,N).
        :- len(cons(0, cons(succ(0), nil)), N).
        :- len(cons(nil, nil), N).
        """
    )
    assert answers_of(results[0], "N") == ["succ(succ(0))"]
    assert answers_of(results[1], "N") == ["succ(0)"]
    assert all(result.consistent for result in results)


def test_heterogeneous_ground_list_commits_nat():
    # The cover-inference path end to end.
    _, results = run_file(
        """
        FUNC nil, cons, 0, succ, pred.
        TYPE elist, nelist, list, nat, unnat, int.
        elist >= nil.
        nelist(A) >= cons(A,list(A)).
        list(A) >= elist + nelist(A).
        nat >= 0 + succ(nat).
        unnat >= 0 + pred(unnat).
        int >= nat + unnat.
        PRED member(A,list(A)).
        member(X,cons(X,L)).
        member(X,cons(Y,L)) :- member(X,L).
        :- member(X, cons(0, cons(succ(0), nil))).
        """
    )
    assert answers_of(results[0], "X") == ["0", "succ(0)"]
    assert results[0].consistent


def test_deep_execution_stays_consistent():
    lines = ["FUNC nil, cons.", "TYPE elist, nelist, list.",
             "elist >= nil.", "nelist(A) >= cons(A,list(A)).",
             "list(A) >= elist + nelist(A).",
             "PRED app(list(A),list(A),list(A)).",
             "app(nil,L,L).",
             "app(cons(X,L),M,cons(X,N)) :- app(L,M,N)."]
    big = "nil"
    for _ in range(30):
        big = f"cons(nil, {big})"
    lines.append(f":- app({big}, nil, R).")
    _, results = run_file("\n".join(lines))
    assert len(results[0].answers) == 1
    assert results[0].resolvents_checked >= 30
    assert results[0].consistent
