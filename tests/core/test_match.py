"""Experiment E4: ``match`` (Definition 13, Theorems 4–5).

Every example from Section 4 is replayed verbatim, the Theorem 4
correctness claims are verified against the subtype engine on the paper's
universe, and termination (Theorem 5) is exercised on deep terms.
"""

import random

import pytest

from repro.core import (
    ConstraintSet,
    MATCH_BOTTOM,
    MATCH_FAIL,
    Matcher,
    RestrictionViolation,
    SubtypeEngine,
    SymbolTable,
    is_respectful_typing,
    is_typing,
    is_typing_result,
    more_general_typing,
)
from repro.lang import parse_term as T
from repro.terms import Substitution, Var
from repro.workloads import (
    constraint,
    deep_nat,
    ids_nonuniform,
    nat_list,
    paper_universe,
    random_ground_member,
    rich_universe,
)


@pytest.fixture(scope="module")
def matcher():
    return Matcher(paper_universe())


@pytest.fixture(scope="module")
def engine():
    return SubtypeEngine(paper_universe())


def typing(**bindings):
    return Substitution({Var(name): T(text) for name, text in bindings.items()})


# -- the paper's worked examples ---------------------------------------------------


def test_match_variable_takes_type(matcher):
    # "match(list(A), X) = {X ↦ list(A)}"
    assert matcher.match(T("list(A)"), Var("X")) == typing(X="list(A)")


def test_match_no_typing_possible(matcher):
    # "There are cases where no typing of any kind is possible, e.g.
    #  match(int, cons(X, Y))."
    assert matcher.match(T("int"), T("cons(X, Y)")) is MATCH_FAIL


def test_match_union_of_incompatible_shapes_is_bottom():
    # "match(f(int)+f(list(A)), f(X)); here both {X ↦ int} and
    #  {X ↦ list(A)} are respectful but neither is most general" → ⊥.
    # (cons/2 plays f; we use succ to stay unary.)
    matcher = Matcher(paper_universe())
    result = matcher.match(T("succ(int) + succ(list(A))"), T("succ(X)"))
    assert result is MATCH_BOTTOM


def test_match_variable_type_against_compound_is_bottom(matcher):
    # "match(A, f(X)); here {X ↦ B} is most general but it is not
    #  respectful" → ⊥.
    assert matcher.match(Var("A"), T("succ(X)")) is MATCH_BOTTOM


def test_match_loses_track_union_same_shape():
    # "match may fail to recognize that a respectful, most general typing
    #  exists, e.g. as in match(f(int) + f(nat), f(X))" → ⊥.
    matcher = Matcher(paper_universe())
    assert matcher.match(T("succ(int) + succ(nat)"), T("succ(X)")) is MATCH_BOTTOM


def test_match_repeated_variable_different_types_is_bottom():
    # "... and match(f(int, nat), f(X, X))" → ⊥ (cons plays binary f).
    matcher = Matcher(paper_universe())
    assert matcher.match(T("cons(int, nat)"), T("cons(X, X)")) is MATCH_BOTTOM


def test_match_repeated_variable_no_typing_is_bottom():
    # "... or that no typing is possible, e.g. as in
    #  match(f(int, list(A)), f(X, X))" → ⊥ (not fail!).
    matcher = Matcher(paper_universe())
    assert matcher.match(T("cons(int, list(A))"), T("cons(X, X)")) is MATCH_BOTTOM


# -- the defining clauses, systematically ----------------------------------------


def test_clause1_any_type_for_variable(matcher):
    assert matcher.match(T("nat"), Var("Z")) == typing(Z="nat")
    assert matcher.match(Var("B"), Var("Z")) == typing(Z="B")


def test_clause2_variable_type_against_constant(matcher):
    # 0-ary terms are "degenerate n-ary": still ⊥.
    assert matcher.match(Var("A"), T("nil")) is MATCH_BOTTOM


def test_clause3_constant_match(matcher):
    assert matcher.match(T("nil"), T("nil")) == Substitution()
    assert matcher.match(T("nil"), T("0")) is MATCH_FAIL


def test_clause3_componentwise(matcher):
    result = matcher.match(T("cons(nat, list(nat))"), T("cons(X, L)"))
    assert result == typing(X="nat", L="list(nat)")


def test_clause3_fail_dominates_bottom(matcher):
    # One argument fails, another is ⊥ → fail (fail is checked first).
    result = matcher.match(T("cons(nil, A)"), T("cons(0, succ(X))"))
    assert result is MATCH_FAIL


def test_clause4_single_successful_expansion(matcher):
    # list(nat) against cons(...): elist branch fails, nelist succeeds.
    result = matcher.match(T("list(nat)"), T("cons(X, L)"))
    assert result == typing(X="nat", L="list(nat)")


def test_clause4_all_expansions_fail(matcher):
    assert matcher.match(T("nat"), T("cons(X, L)")) is MATCH_FAIL
    assert matcher.match(T("elist"), T("cons(X, L)")) is MATCH_FAIL


def test_clause4_duplicate_results_collapse():
    # Both branches of nat + nat give the same typing: S = {θ} → θ.
    matcher = Matcher(paper_universe())
    assert matcher.match(T("nat + nat"), T("succ(X)")) == typing(X="nat")


def test_clause4_no_constraints_is_bottom():
    symbols = SymbolTable()
    symbols.declare_function("k", 0)
    symbols.declare_type_constructor("ghost", 0)
    matcher = Matcher(ConstraintSet(symbols))
    # Empty S: Definition 13's else branch — ⊥ (the paper's letter).
    assert matcher.match(T("ghost"), T("k")) is MATCH_BOTTOM


def test_match_whole_atoms(matcher):
    # Section 6 treats predicate symbols as function symbols.  Emulate by
    # treating cons as a binary predicate.
    result = matcher.match(T("cons(list(A), list(A))"), T("cons(X, cons(Y, L))"))
    assert is_typing_result(result)
    assert result[Var("X")] == T("list(A)")
    assert result[Var("Y")] == T("A")
    assert result[Var("L")] == T("list(A)")


# -- Theorem 4: correctness against the subtype engine --------------------------------


THEOREM4_CASES = [
    ("list(A)", "X"),
    ("list(nat)", "cons(X, L)"),
    ("nelist(int)", "cons(X, L)"),
    ("int", "succ(X)"),
    ("int", "pred(X)"),
    ("nat", "succ(succ(X))"),
    ("cons(nat, elist)", "cons(X, Y)"),
    ("list(list(nat))", "cons(cons(X, L), M)"),
    ("nat + list(A)", "cons(X, L)"),
]


@pytest.mark.parametrize("type_text,term_text", THEOREM4_CASES)
def test_theorem4_result_is_respectful(type_text, term_text, matcher, engine):
    result = matcher.match(T(type_text), T(term_text))
    assert is_typing_result(result), (type_text, term_text)
    assert is_typing(engine, T(type_text), T(term_text), result)
    assert is_respectful_typing(engine, T(type_text), T(term_text), result)


@pytest.mark.parametrize("type_text,term_text", THEOREM4_CASES)
def test_theorem4_result_is_most_general(type_text, term_text, matcher, engine):
    result = matcher.match(T(type_text), T(term_text))
    assert is_typing_result(result)
    # Compare against alternative typings obtained by grounding every
    # variable to sample types.
    for sample in ["nat", "elist", "list(int)"]:
        candidate = Substitution({var: T(sample) for var in result.domain})
        if is_typing(engine, T(type_text), T(term_text), candidate):
            assert more_general_typing(engine, result, candidate, T(term_text))


def test_theorem4_fail_means_no_typing(matcher, engine):
    fail_cases = [("int", "cons(X, Y)"), ("elist", "cons(X, L)"), ("nat", "pred(X)")]
    for type_text, term_text in fail_cases:
        assert matcher.match(T(type_text), T(term_text)) is MATCH_FAIL
        for sample in ["nat", "unnat", "int", "elist", "list(A)", "A"]:
            term = T(term_text)
            from repro.terms import variables_of

            candidate = Substitution({v: T(sample) for v in variables_of(term)})
            assert not is_typing(engine, T(type_text), term, candidate)


# -- Theorem 5: termination -----------------------------------------------------------


def test_termination_on_deep_terms(matcher):
    deep = deep_nat(300)
    assert matcher.match(T("nat"), deep) == Substitution()
    assert matcher.match(T("int"), deep) == Substitution()


def test_termination_on_long_lists(matcher):
    assert is_typing_result(matcher.match(T("list(nat)"), nat_list(150)))


def test_termination_on_random_inputs():
    cset = rich_universe()
    matcher = Matcher(cset)
    rng = random.Random(13)
    for seed in range(30):
        member = random_ground_member(rng, cset, T("tree(nat)"), max_depth=4)
        if member is not None:
            result = matcher.match(T("tree(nat)"), member)
            assert result == Substitution()  # ground member: empty typing


# -- preconditions ---------------------------------------------------------------------


def test_matcher_rejects_nonuniform():
    with pytest.raises(RestrictionViolation):
        Matcher(ids_nonuniform())


def test_matcher_rejects_unguarded():
    symbols = SymbolTable()
    symbols.declare_function("f", 1)
    symbols.declare_type_constructor("c", 0)
    cset = ConstraintSet(symbols, [constraint("c >= c")])
    with pytest.raises(RestrictionViolation):
        Matcher(cset)


def test_memoization_transparent():
    memo = Matcher(paper_universe(), memoize=True)
    plain = Matcher(paper_universe(), memoize=False)
    for type_text, term_text in THEOREM4_CASES:
        assert memo.match(T(type_text), T(term_text)) == plain.match(
            T(type_text), T(term_text)
        )
