"""The compiled tree automata: table-walk verdicts must be bit-identical
to the template-expansion engine, the naive SLD oracle, and both match
variants — on hand cases, budget-refused roots, frozen constants, random
uniform universes, and across a pickle round trip."""

import pickle
import random

import pytest

from repro.core import (
    ConstraintMatcher,
    MATCH_BOTTOM,
    MATCH_FAIL,
    Matcher,
    NaiveSubtypeProver,
    SubtypeEngine,
)
from repro.core.automata import AUTOMATA, AutomataStore, TreeAutomaton
from repro.lang import parse_term as T
from repro.terms import Struct, Var
from repro.terms.freeze import freeze
from repro.workloads import (
    deep_int,
    deep_nat,
    ids_nonuniform,
    nat_list,
    paper_universe,
)
from repro.workloads.generators import (
    random_ground_member,
    random_guarded_constraint_set,
    random_subtype_pair,
)


@pytest.fixture()
def store():
    return AutomataStore()


#: Ground (supertype, subtype) pairs over the paper universe covering
#: membership, refutation, unions, deep towers, and list nesting.
PAPER_CASES = [
    ("nat", "0"),
    ("nat", "succ(succ(0))"),
    ("int", "pred(pred(0))"),
    ("nat", "pred(0)"),
    ("int", "succ(0)"),
    ("list(nat)", "cons(0, cons(succ(0), nil))"),
    ("list(int)", "cons(pred(0), nil)"),
    ("list(nat)", "cons(pred(0), nil)"),
    ("int", "nat"),
    ("nat", "int"),
    ("list(int)", "list(nat)"),
    ("list(nat)", "list(int)"),
    ("u(nat, list(nat))", "nil"),
    ("u(nat, list(nat))", "succ(0)"),
    ("u(nat, list(nat))", "pred(0)"),
]


def test_compile_builds_states_and_rules(store):
    automaton = store.automaton_for(paper_universe())
    assert automaton is not None
    stats = automaton.stats()
    # Nullary constructor types (nat, int, ...) are seeded at compile.
    assert stats["states"] > 0 and stats["rules"] > 0
    assert stats["saturated"] == 0


def test_same_fingerprint_compiles_once(store):
    first = store.automaton_for(paper_universe())
    second = store.automaton_for(paper_universe())
    assert first is second
    assert store.compiles == 1 and store.attachments == 2


def test_nonuniform_set_rejected_and_cached(store):
    assert store.automaton_for(ids_nonuniform()) is None
    assert store.automaton_for(ids_nonuniform()) is None
    assert store.rejections == 1
    assert store.stats()["rejected_scopes"] == 1


def test_disabled_store_returns_none(store):
    previous = store.set_enabled(False)
    assert previous is True
    assert store.automaton_for(paper_universe()) is None
    store.set_enabled(True)
    assert store.automaton_for(paper_universe()) is not None


def test_holds_matches_template_engine_on_paper_cases(store):
    cset = paper_universe()
    automaton = store.automaton_for(cset)
    template = SubtypeEngine(cset, automata=False)
    for sup_text, sub_text in PAPER_CASES:
        sup, sub = T(sup_text), T(sub_text)
        assert automaton.holds(sup, sub) == template.holds(sup, sub), (
            f"{sup_text} >= {sub_text}"
        )


def test_holds_matches_naive_sld_oracle(store):
    cset = paper_universe()
    automaton = store.automaton_for(cset)
    naive = NaiveSubtypeProver(cset)
    for sup_text, sub_text in PAPER_CASES:
        if "u(" in sup_text:  # H_C has no clauses for the union constructor
            continue
        sup, sub = T(sup_text), T(sub_text)
        verdict = naive.holds(sup, sub)
        if verdict is None:  # bounded search exhausted — no oracle
            continue
        assert automaton.holds(sup, sub) == verdict, f"{sup_text} >= {sub_text}"


def test_holds_on_deep_towers(store):
    cset = paper_universe()
    automaton = store.automaton_for(cset)
    assert automaton.holds(T("nat"), deep_nat(512)) is True
    assert automaton.holds(T("int"), deep_int(512)) is True
    assert automaton.holds(T("nat"), deep_int(512)) is False
    assert automaton.holds(T("list(nat)"), nat_list(128)) is True


def test_random_uniform_universes_differential():
    rng = random.Random(20260808)
    for _ in range(12):
        cset = random_guarded_constraint_set(rng)
        automaton = AutomataStore().automaton_for(cset)
        if automaton is None:  # generator occasionally emits rejected sets
            continue
        template = SubtypeEngine(cset, automata=False)
        for _ in range(8):
            sup, sub = random_subtype_pair(rng, cset)
            if sup is None or sub is None or not (sup.ground and sub.ground):
                continue
            assert automaton.holds(sup, sub) == template.holds(sup, sub)


def test_budget_refused_root_still_answers_correctly():
    # A one-state budget refuses every non-trivial root; the product
    # construction (AND-OR over Theorem 1/2 disjuncts) must take over
    # with identical verdicts.
    cset = paper_universe()
    tiny = TreeAutomaton(cset, max_states=4, root_state_budget=1)
    template = SubtypeEngine(cset, automata=False)
    for sup_text, sub_text in PAPER_CASES:
        sup, sub = T(sup_text), T(sub_text)
        assert tiny.holds(sup, sub) == template.holds(sup, sub), (
            f"{sup_text} >= {sub_text}"
        )
    assert tiny.stats()["refusals"] > 0


def test_frozen_constant_roots_are_refused_not_wrong(store):
    cset = paper_universe()
    automaton = store.automaton_for(cset)
    template = SubtypeEngine(cset, automata=False)
    bar = freeze(Var("X"))
    assert automaton.holds(bar, bar) is True  # reflexivity
    cases = [
        (Struct("list", (bar,)), Struct("cons", (bar, Struct("nil", ())))),
        (T("nat"), bar),
        (Struct("list", (bar,)), T("nil")),
    ]
    for sup, sub in cases:
        assert automaton.holds(sup, sub) == template.holds(sup, sub)
    # The frozen-mentioning roots never became states.
    assert all("$frozen" not in str(state) for state in automaton._states)


def test_match_ground_matches_both_matchers(store):
    cset = paper_universe()
    automaton = store.automaton_for(cset)
    matcher = Matcher(cset, automata=False)
    cmatcher = ConstraintMatcher(cset, automata=False)

    def expect(result):
        if result is MATCH_FAIL:
            return "fail"
        if result is MATCH_BOTTOM:
            return "bottom"
        return "typing"

    cases = [(T(a), T(b)) for a, b in PAPER_CASES if "(" in b or b in ("0", "nil")]
    cases += [
        (T("list(nat)"), nat_list(32)),
        (T("nat"), deep_nat(64)),
        (T("nat"), deep_int(8)),
    ]
    for type_term, term in cases:
        if not (type_term.ground and term.ground):
            continue
        assert automaton.match_ground(type_term, term) == expect(
            matcher.match(type_term, term)
        )
        assert automaton.match_ground(type_term, term, constraint_mode=True) == expect(
            cmatcher.match(type_term, term, set()).result
        )


def test_match_random_differential():
    rng = random.Random(77)
    for _ in range(10):
        cset = random_guarded_constraint_set(rng)
        automaton = AutomataStore().automaton_for(cset)
        if automaton is None:
            continue
        matcher = Matcher(cset, automata=False)
        cmatcher = ConstraintMatcher(cset, automata=False)
        for _ in range(6):
            sup, _sub = random_subtype_pair(rng, cset)
            if sup is None or not sup.ground:
                continue
            term = random_ground_member(rng, cset, sup)
            if term is None or not isinstance(term, Struct):
                continue
            plain = matcher.match(sup, term)
            expected = (
                "fail"
                if plain is MATCH_FAIL
                else "bottom" if plain is MATCH_BOTTOM else "typing"
            )
            assert automaton.match_ground(sup, term) == expected
            collected = cmatcher.match(sup, term, set()).result
            cexpected = (
                "fail"
                if collected is MATCH_FAIL
                else "bottom" if collected is MATCH_BOTTOM else "typing"
            )
            assert automaton.match_ground(sup, term, constraint_mode=True) == cexpected


# -- engine integration: hit/fallback counters are exact ----------------------


def test_uniform_engine_counts_one_hit_per_ground_root_query():
    engine = SubtypeEngine(paper_universe())
    assert engine._automaton is not None
    queries = [(T("nat"), deep_nat(d)) for d in (3, 5, 7)]
    for sup, sub in queries:
        engine.holds(sup, sub)
    assert engine.stats.automaton_hits == len(queries)
    assert engine.stats.automaton_fallbacks == 0
    # A repeated query answers from the engine memo, not the automaton.
    engine.holds(*queries[0])
    assert engine.stats.automaton_hits == len(queries)
    assert engine.stats.memo_hits == 1


def test_nonuniform_engine_counts_exact_fallbacks():
    engine = SubtypeEngine(ids_nonuniform(), validate=False)
    assert engine._automaton is None and engine._automaton_requested is AUTOMATA.enabled
    assert engine.holds(T("nat"), T("0")) is True
    assert engine.stats.automaton_hits == 0
    assert engine.stats.automaton_fallbacks == 1


def test_opted_out_engine_has_zero_automaton_counters():
    engine = SubtypeEngine(paper_universe(), automata=False)
    engine.holds(T("nat"), deep_nat(5))
    assert engine.stats.automaton_hits == 0
    assert engine.stats.automaton_fallbacks == 0


def test_store_disabled_engine_matches_seed_counters():
    previous = AUTOMATA.set_enabled(False)
    try:
        engine = SubtypeEngine(paper_universe())
        assert engine._automaton is None and engine._automaton_requested is False
        engine.holds(T("nat"), deep_nat(5))
        assert engine.stats.automaton_hits == 0
        assert engine.stats.automaton_fallbacks == 0
    finally:
        AUTOMATA.set_enabled(previous)


def test_engine_verdicts_identical_with_and_without_automata():
    cset = paper_universe()
    fast = SubtypeEngine(cset)
    slow = SubtypeEngine(cset, automata=False)
    for sup_text, sub_text in PAPER_CASES:
        sup, sub = T(sup_text), T(sub_text)
        assert fast.holds(sup, sub) == slow.holds(sup, sub)


# -- persistence ---------------------------------------------------------------


def test_pickle_round_trip_preserves_verdicts(store):
    cset = paper_universe()
    automaton = store.automaton_for(cset)
    for sup_text, sub_text in PAPER_CASES:
        automaton.holds(T(sup_text), T(sub_text))
    restored = pickle.loads(pickle.dumps(automaton))
    # Deep-term caches are dropped on pickle; the compiled structure and
    # every verdict survive.
    assert restored.stats()["states"] == automaton.stats()["states"]
    assert restored.stats()["pair_entries"] == 0
    for sup_text, sub_text in PAPER_CASES:
        sup, sub = T(sup_text), T(sub_text)
        assert restored.holds(sup, sub) == automaton.holds(sup, sub)


def test_spill_save_and_load_round_trip(tmp_path):
    writer = AutomataStore()
    writer.ensure_version("test-v1")
    assert writer.automaton_for(paper_universe()) is not None
    path = writer.save_spill(tmp_path)
    assert path is not None and path.endswith("automata.pickle")

    reader = AutomataStore()
    reader.ensure_version("test-v1")
    assert reader.load_spill(tmp_path) == 1
    automaton = reader.automaton_for(paper_universe())
    assert reader.compiles == 0  # adopted from the spill, not recompiled
    assert automaton.holds(T("nat"), deep_nat(16)) is True


def test_spill_with_stale_version_is_ignored(tmp_path):
    writer = AutomataStore()
    writer.ensure_version("old")
    writer.automaton_for(paper_universe())
    writer.save_spill(tmp_path)

    reader = AutomataStore()
    reader.ensure_version("new")
    assert reader.load_spill(tmp_path) == 0


def test_corrupt_spill_is_a_cold_start(tmp_path):
    (tmp_path / "automata.pickle").write_bytes(b"not a pickle")
    reader = AutomataStore()
    reader.ensure_version("v")
    assert reader.load_spill(tmp_path) == 0


def test_ensure_version_change_drops_automata(store):
    store.ensure_version("a")
    store.automaton_for(paper_universe())
    assert store.stats()["scopes"] == 1
    store.ensure_version("b")
    assert store.stats()["scopes"] == 0
    assert store.invalidations == 1
