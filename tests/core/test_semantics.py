"""Experiments E1/E10: the semantics M_C, enumeration, non-uniform types."""

import pytest

from repro.core import GeneralTypeSemantics, SubtypeEngine, TypeSemantics, herbrand_universe
from repro.lang import parse_term as T
from repro.terms import atom, struct
from repro.workloads import ids_nonuniform, lists, naturals, paper_universe


def members(semantics, text, depth):
    return {str(t) for t in semantics.inhabitants(T(text), depth)}


@pytest.fixture(scope="module")
def semantics():
    return TypeSemantics(paper_universe())


# -- Herbrand universe -------------------------------------------------------------


def test_herbrand_depth_one():
    universe = herbrand_universe({"0": 0, "succ": 1}, 1)
    assert universe == {atom("0")}


def test_herbrand_depth_two():
    universe = herbrand_universe({"0": 0, "succ": 1}, 2)
    assert universe == {atom("0"), struct("succ", atom("0"))}


def test_herbrand_growth():
    functions = {"0": 0, "succ": 1, "pair": 2}
    sizes = [len(herbrand_universe(functions, d)) for d in range(1, 5)]
    assert sizes[0] < sizes[1] < sizes[2] < sizes[3]


def test_herbrand_empty_without_constants():
    assert herbrand_universe({"succ": 1}, 3) == set()


# -- enumeration of the paper's types ----------------------------------------------


def test_nat_inhabitants(semantics):
    assert members(semantics, "nat", 3) == {"0", "succ(0)", "succ(succ(0))"}


def test_unnat_inhabitants(semantics):
    assert members(semantics, "unnat", 2) == {"0", "pred(0)"}


def test_int_is_union(semantics):
    ints = members(semantics, "int", 3)
    assert ints == members(semantics, "nat", 3) | members(semantics, "unnat", 3)


def test_elist_and_nelist(semantics):
    assert members(semantics, "elist", 5) == {"nil"}
    assert "nil" not in members(semantics, "nelist(nat)", 3)
    assert "cons(0, nil)" in members(semantics, "nelist(nat)", 3)


def test_list_of_nat(semantics):
    found = members(semantics, "list(nat)", 3)
    assert "nil" in found
    assert "cons(0, nil)" in found
    assert "cons(succ(0), nil)" in found
    assert "cons(pred(0), nil)" not in found


def test_variable_type_is_whole_universe(semantics):
    cset = paper_universe()
    assert semantics.inhabitants(T("A"), 2) == frozenset(
        herbrand_universe(cset.symbols.functions, 2)
    )


def test_function_type_componentwise(semantics):
    found = members(semantics, "cons(nat, elist)", 3)
    assert found == {"cons(0, nil)", "cons(succ(0), nil)"}


def test_unconstrained_constructor_is_empty():
    cset = lists()
    cset.symbols.declare_type_constructor("ghost", 0)
    semantics = GeneralTypeSemantics(cset)
    assert semantics.inhabitants(T("ghost"), 5) == frozenset()


def test_membership_oracle_matches_enumeration(semantics):
    for text in ["nat", "unnat", "int", "list(nat)", "nelist(unnat)"]:
        for term in semantics.inhabitants(T(text), 3):
            assert semantics.member(T(text), term), (text, term)


def test_subset_upto_tracks_subtyping(semantics):
    engine = SubtypeEngine(paper_universe())
    pairs = [("int", "nat"), ("list(A)", "nelist(A)"), ("nat + unnat", "unnat")]
    for wider, narrower in pairs:
        assert engine.holds(T(wider), T(narrower))
        assert semantics.subset_upto(T(wider), T(narrower), 3)


def test_depth_zero_is_empty(semantics):
    assert semantics.inhabitants(T("nat"), 0) == frozenset()


def test_unguarded_set_raises_recursion_guard():
    from repro.core import ConstraintSet, SymbolTable
    from repro.workloads import constraint

    symbols = SymbolTable()
    symbols.declare_function("f", 1)
    symbols.declare_type_constructor("c", 0)
    cset = ConstraintSet(symbols, [constraint("c >= c")])
    semantics = GeneralTypeSemantics(cset, max_expansion_chain=16)
    with pytest.raises(RecursionError):
        semantics.inhabitants(T("c"), 3)


# -- E10: the non-uniform id types of Section 1 ---------------------------------------


@pytest.fixture(scope="module")
def id_semantics():
    return GeneralTypeSemantics(ids_nonuniform())


def test_id_males(id_semantics):
    found = {str(t) for t in id_semantics.inhabitants(T("id(males)"), 3)}
    assert "m(0)" in found
    assert "m(succ(0))" in found
    assert not any(text.startswith("f(") for text in found)


def test_id_females(id_semantics):
    found = {str(t) for t in id_semantics.inhabitants(T("id(females)"), 3)}
    assert "f(0)" in found
    assert not any(text.startswith("m(") for text in found)


def test_id_person_contains_both(id_semantics):
    # "the type id(person) contains the elements of id(males) and id(females)"
    males = id_semantics.inhabitants(T("id(males)"), 3)
    females = id_semantics.inhabitants(T("id(females)"), 3)
    person = id_semantics.inhabitants(T("id(person)"), 3)
    assert males <= person
    assert females <= person
    assert males | females == person


def test_id_unrelated_argument_is_empty(id_semantics):
    # id(nat) has no declared constraints that apply: no inhabitants.
    assert id_semantics.inhabitants(T("id(nat)"), 3) == frozenset()
