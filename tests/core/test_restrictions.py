"""Experiment E3: uniform polymorphism and guardedness (Definitions 6–9).

Every acceptance/rejection example from Section 3 of the paper is replayed
here verbatim.
"""

import pytest

from repro.core import (
    ConstraintSet,
    RestrictionViolation,
    SymbolTable,
    direct_dependence_graph,
    is_guarded,
    is_uniform_polymorphic,
    non_uniform_constraints,
    unguarded_constructors,
    validate_restrictions,
)
from repro.workloads import constraint, ids_nonuniform, lists, naturals, paper_universe, rich_universe


def _set(functions, types, texts, include_union=True):
    symbols = SymbolTable()
    for name, arity in functions:
        symbols.declare_function(name, arity)
    for name, arity in types:
        symbols.declare_type_constructor(name, arity)
    return ConstraintSet(symbols, [constraint(t) for t in texts], include_union=include_union)


# -- uniform polymorphism (Definition 6) --------------------------------------


def test_paper_universe_is_uniform():
    assert is_uniform_polymorphic(paper_universe())
    assert is_uniform_polymorphic(rich_universe())


def test_nonuniform_id_detected():
    cset = ids_nonuniform()
    offenders = non_uniform_constraints(cset)
    assert len(offenders) == 2
    assert {c.constructor for c in offenders} == {"id"}
    assert not is_uniform_polymorphic(cset)


def test_repeated_lhs_variable_not_uniform():
    cset = _set([("f", 1)], [("c", 2)], ["c(A, A) >= f(A)"])
    assert not is_uniform_polymorphic(cset)


def test_validate_raises_on_nonuniform():
    with pytest.raises(RestrictionViolation):
        validate_restrictions(ids_nonuniform())


# -- guardedness (Definitions 8–9, paper's Section 3 examples) -------------------


def test_guarded_recursion_through_function_symbol_accepted():
    # "the constraint c >= f(c). is acceptable"
    cset = _set([("f", 1)], [("c", 0)], ["c >= f(c)"])
    assert is_guarded(cset)
    validate_restrictions(cset)


def test_direct_self_recursion_rejected():
    # "... but the constraints c >= c. ... are not"
    cset = _set([("f", 1)], [("c", 0)], ["c >= c"])
    assert unguarded_constructors(cset) == ["c"]


def test_self_recursion_under_own_constructor_rejected():
    # "... and c(A) >= c(f(A)). are not"
    cset = _set([("f", 1)], [("c", 1)], ["c(A) >= c(f(A))"])
    assert unguarded_constructors(cset) == ["c"]


def test_mutual_recursion_rejected():
    # c(A) >= b(f(A)).  b(B) >= c(f(B)).  is not acceptable
    cset = _set(
        [("f", 1)],
        [("c", 1), ("b", 1)],
        ["c(A) >= b(f(A))", "b(B) >= c(f(B))"],
    )
    assert set(unguarded_constructors(cset)) == {"b", "c"}


def test_recursion_through_polymorphism_rejected():
    # b(A) >= A.  c >= b(c).  is not acceptable
    cset = _set(
        [("f", 1)],
        [("b", 1), ("c", 0)],
        ["b(A) >= A", "c >= b(c)"],
    )
    assert "c" in unguarded_constructors(cset)


def test_occurrence_under_type_constructor_is_unguarded():
    # An occurrence inside a *type constructor* argument still counts
    # (only function symbols guard).
    cset = _set(
        [("f", 1)],
        [("b", 1), ("c", 0)],
        ["b(A) >= f(A)", "c >= b(c)"],
    )
    assert "c" in unguarded_constructors(cset)


def test_paper_universe_is_guarded():
    assert is_guarded(paper_universe())
    assert is_guarded(naturals())
    assert is_guarded(lists())
    assert is_guarded(rich_universe())


def test_nonuniform_ids_are_guarded():
    # Guardedness is orthogonal to uniformity; the id example is guarded.
    assert is_guarded(ids_nonuniform())


def test_validate_raises_on_unguarded():
    cset = _set([("f", 1)], [("c", 0)], ["c >= c"])
    with pytest.raises(RestrictionViolation):
        validate_restrictions(cset)


def test_validate_flags_can_relax():
    cset = _set([("f", 1)], [("c", 0)], ["c >= c"])
    validate_restrictions(cset, require_guarded=False)  # no raise
    with pytest.raises(RestrictionViolation):
        validate_restrictions(cset, require_guarded=True)


# -- the dependence graph itself --------------------------------------------------


def test_dependence_graph_edges():
    cset = lists()
    graph = direct_dependence_graph(cset)
    # list(A) >= elist + nelist(A): list depends on +, elist, nelist.
    assert graph.successors("list") == {"+", "elist", "nelist"}
    # nelist(A) >= cons(A, list(A)): cons is a function symbol — guarded,
    # so nelist has no unguarded dependencies.
    assert graph.successors("nelist") == set()


def test_dependence_reaches_transitively():
    # A three-step chain a -> b -> c.
    cset = _set(
        [("f", 1)],
        [("a", 0), ("b", 0), ("c", 0)],
        ["a >= b", "b >= c"],
        include_union=False,
    )
    graph = direct_dependence_graph(cset)
    assert graph.reaches("a", "c")
    assert not graph.reaches("c", "a")


def test_transitive_closure():
    cset = _set(
        [("f", 1)],
        [("a", 0), ("b", 0), ("c", 0)],
        ["a >= b", "b >= c"],
        include_union=False,
    )
    closure = direct_dependence_graph(cset).transitive_closure()
    assert closure["a"] == {"b", "c"}
    assert closure["b"] == {"c"}


def test_union_is_self_clean():
    # The predefined + constraints (A+B >= A) mention no constructor at all.
    cset = naturals()
    graph = direct_dependence_graph(cset)
    assert "+" not in graph.successors("+")
