"""Tests for symbol tables, subtype constraints and constraint sets."""

import pytest

from repro.core import ConstraintSet, DeclarationError, SubtypeConstraint, SymbolTable
from repro.lang import parse_term
from repro.terms import Struct, Var, atom, struct
from repro.workloads import constraint, lists, naturals


def test_declare_and_classify():
    symbols = SymbolTable()
    symbols.declare_function("succ", 1)
    symbols.declare_type_constructor("nat", 0)
    assert symbols.is_function("succ")
    assert symbols.is_type_constructor("nat")
    assert symbols.kind_of("succ") == "function"
    assert symbols.kind_of("nat") == "type"
    assert symbols.kind_of("zork") is None


def test_alphabets_disjoint():
    symbols = SymbolTable()
    symbols.declare_function("nat", 0)
    with pytest.raises(DeclarationError):
        symbols.declare_type_constructor("nat", 0)


def test_arity_consistency():
    symbols = SymbolTable()
    symbols.declare_function("f", 2)
    symbols.declare_function("f", 2)  # same arity is fine
    with pytest.raises(DeclarationError):
        symbols.declare_function("f", 3)


def test_negative_arity_rejected():
    symbols = SymbolTable()
    with pytest.raises(DeclarationError):
        symbols.declare_function("f", -1)


def test_check_type_accepts_mixed_alphabets():
    cset = lists()
    cset.symbols.check_type(parse_term("cons(A, list(A))"))


def test_check_type_rejects_undeclared():
    cset = lists()
    with pytest.raises(DeclarationError):
        cset.symbols.check_type(parse_term("zork(A)"))


def test_check_type_rejects_wrong_arity():
    cset = lists()
    with pytest.raises(DeclarationError):
        cset.symbols.check_type(parse_term("cons(A)"))


def test_check_object_term_rejects_type_constructors():
    cset = lists()
    cset.symbols.check_object_term(parse_term("cons(nil, nil)"))
    with pytest.raises(DeclarationError):
        cset.symbols.check_object_term(parse_term("cons(elist, nil)"))


def test_definition2_side_condition():
    # var(rhs) ⊆ var(lhs) is enforced at construction.
    with pytest.raises(DeclarationError):
        SubtypeConstraint(struct("list", Var("A")), struct("cons", Var("B"), Var("A")))


def test_constraint_uniformity_flag():
    assert constraint("list(A) >= elist + nelist(A)").is_uniform
    assert constraint("nelist(A) >= cons(A, list(A))").is_uniform
    assert not constraint("id(males) >= m(nat)").is_uniform
    # Repeated lhs variables are not uniform either.
    repeated = SubtypeConstraint(
        Struct("c", (Var("A"), Var("A"))), Var("A")
    )
    assert not repeated.is_uniform


def test_union_predefined():
    cset = naturals()
    assert cset.symbols.is_type_constructor("+")
    union_constraints = cset.constraints_for("+")
    assert len(union_constraints) == 2


def test_union_can_be_excluded():
    symbols = SymbolTable()
    cset = ConstraintSet(symbols, include_union=False)
    assert not cset.symbols.is_type_constructor("+")
    assert len(cset) == 0


def test_add_requires_declared_head():
    cset = naturals()
    with pytest.raises(DeclarationError):
        cset.add(SubtypeConstraint(struct("undeclared", Var("A")), Var("A")))


def test_constraints_for_groups_by_constructor():
    cset = naturals()
    assert len(cset.constraints_for("nat")) == 1
    assert len(cset.constraints_for("int")) == 1
    assert cset.constraints_for("missing") == []


def test_defined_constructors():
    cset = naturals()
    assert cset.defined_constructors() == {"nat", "unnat", "int", "+"}


def test_expansions_uniform_substitution():
    cset = lists()
    expansions = cset.expansions(parse_term("list(int)"))
    assert len(expansions) == 1
    assert expansions[0] == parse_term("elist + nelist(int)")


def test_expansions_union():
    cset = lists()
    expansions = cset.expansions(parse_term("elist + nelist(A)"))
    assert parse_term("elist") in expansions
    assert parse_term("nelist(A)") in expansions


def test_expansion_preserves_argument_variables():
    cset = lists()
    expansions = cset.expansions(parse_term("nelist(B)"))
    assert expansions == [parse_term("cons(B, list(B))")]


def test_symbol_table_copy_is_independent():
    symbols = SymbolTable()
    symbols.declare_function("f", 1)
    copied = symbols.copy()
    copied.declare_function("g", 1)
    assert not symbols.is_function("g")
