"""The process-wide shared subtype memo (``repro.core.shared_memo``).

Differential contract: attaching engines to one shared memo table must
never change a verdict — only who pays for the derivation.  Plus the
bookkeeping: per-scope keying by constraint-set fingerprint, version
fencing, the eviction cap, and the escape hatch.
"""

import random
from pathlib import Path

import pytest

from repro.checker.frontend import check_text
from repro.core.shared_memo import SHARED_MEMO, SharedSubtypeMemo
from repro.core.subtype import SubtypeEngine
from repro.lang import parse_term
from repro.workloads import deep_nat, paper_universe
from repro.workloads.generators import (
    random_guarded_constraint_set,
    random_subtype_pair,
)


def _workload(seed, goals=25):
    rng = random.Random(seed)
    constraints = random_guarded_constraint_set(rng)
    return constraints, [random_subtype_pair(rng, constraints) for _ in range(goals)]


# -- verdict agreement --------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 17, 91])
def test_shared_and_private_memo_verdicts_agree(seed):
    constraints, pairs = _workload(seed)
    memo = SharedSubtypeMemo()
    # Two shared engines take turns (each sees the other's entries) and a
    # private engine derives everything from scratch: identical verdicts.
    shared_one = SubtypeEngine(constraints, validate=False, shared_memo=memo)
    shared_two = SubtypeEngine(constraints, validate=False, shared_memo=memo)
    private = SubtypeEngine(constraints, validate=False)
    for index, (sup, sub) in enumerate(pairs):
        turn = shared_one if index % 2 == 0 else shared_two
        assert turn.holds(sup, sub) == private.holds(sup, sub)


def test_second_engine_starts_warm():
    constraints = paper_universe()
    memo = SharedSubtypeMemo()
    nat, tower = parse_term("nat"), deep_nat(200)
    first = SubtypeEngine(constraints, validate=False, shared_memo=memo)
    assert first.holds(nat, tower) is True
    assert first.stats.memo_entries > 0
    second = SubtypeEngine(constraints, validate=False, shared_memo=memo)
    assert second._memo, "second engine must attach to the populated table"
    assert second.holds(nat, tower) is True
    assert second.stats.memo_hits > 0
    assert second.stats.memo_entries == 0, "warm re-query derives nothing new"


def test_scopes_are_keyed_by_fingerprint():
    memo = SharedSubtypeMemo()
    set_a, _ = _workload(3)
    set_b, _ = _workload(17)
    assert set_a.fingerprint() != set_b.fingerprint()
    table_a = memo.table_for(set_a)
    table_b = memo.table_for(set_b)
    assert table_a is not table_b
    # Same scope → same table, and the fingerprint is stable.
    assert memo.table_for(set_a) is table_a
    assert set_a.fingerprint() == set_a.fingerprint()
    assert memo.stats()["scopes"] == 2


# -- invalidation and capping -------------------------------------------------------


def test_version_fence_drops_tables():
    memo = SharedSubtypeMemo()
    constraints = paper_universe()
    memo.ensure_version("v1")
    table = memo.table_for(constraints)
    table[(parse_term("nat"), parse_term("0"))] = True
    memo.ensure_version("v1")  # same tag: nothing dropped
    assert memo.stats()["entries"] == 1
    memo.ensure_version("v2")  # bump: everything dropped
    assert memo.stats()["entries"] == 0
    assert memo.stats()["scopes"] == 0
    assert memo.table_for(constraints) is not table


def test_entry_cap_restarts_the_scope_cold():
    memo = SharedSubtypeMemo(max_entries_per_scope=4)
    constraints = paper_universe()
    table = memo.table_for(constraints)
    for depth in range(6):  # outgrow the cap
        table[(parse_term("nat"), deep_nat(depth))] = True
    fresh = memo.table_for(constraints)
    assert fresh is not table and fresh == {}
    assert memo.stats()["evictions"] == 1


def test_escape_hatch_disables_sharing():
    memo = SharedSubtypeMemo()
    constraints = paper_universe()
    assert memo.set_enabled(False) is True
    assert memo.table_for(constraints) is None
    engine = SubtypeEngine(constraints, validate=False, shared_memo=memo)
    assert engine._memo_shared is False
    engine.holds(parse_term("nat"), deep_nat(5))
    assert memo.stats()["entries"] == 0, "disabled memo must stay empty"


def test_plain_constructor_never_shares():
    """The default engine keeps a private cold memo — sharing is opt-in
    (the frontend and batch service pass ``shared_memo=`` explicitly)."""
    engine = SubtypeEngine(paper_universe())
    assert engine._memo_shared is False
    assert engine._memo == {}


# -- frontend integration -----------------------------------------------------------


MODES_SOURCE = (
    Path(__file__).resolve().parents[2] / "examples" / "programs" / "modes.tlp"
).read_text()


def test_frontend_engines_share_across_modules():
    first = check_text(MODES_SOURCE)
    assert first.ok
    entries_after_first = SHARED_MEMO.stats()["entries"]
    assert entries_after_first > 0, "frontend engine must populate the shared memo"
    second = check_text(MODES_SOURCE)
    assert second.ok
    assert second.engine._memo_shared
    # Same declaration scope → the very same table object.
    assert second.engine._memo is first.engine._memo
    # The second module re-posed goals the first already derived.
    assert second.engine.stats.memo_hits > 0
