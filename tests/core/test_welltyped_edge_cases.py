"""Edge cases of Definition 16 beyond the paper's worked examples."""

import pytest

from repro.core import PredicateTypeEnv, WellTypedChecker
from repro.lang import parse_atom, parse_clause, parse_query
from repro.lang import parse_term as T
from repro.lp import Clause, Query
from repro.terms import Var
from repro.workloads import paper_universe, rich_universe


def clause(text):
    parsed = parse_clause(text)
    return Clause(parsed.head, parsed.body)


def query(text):
    return Query(parse_query(text).body)


@pytest.fixture()
def checker():
    cset = rich_universe()
    env = PredicateTypeEnv(cset)
    for decl in [
        "halt",
        "run",
        "flagged(bool)",
        "deep(list(list(A)))",
        "swap(prod(A, B), prod(B, A))",
        "dup(A, prod(A, A))",
        "treesum(tree(nat), nat)",
        "first(list(A), A)",
        "two_lists(list(A), list(B))",
        "plus(nat, nat, nat)",
    ]:
        env.declare(parse_atom(decl))
    return WellTypedChecker(cset, env)


# -- nullary predicates -------------------------------------------------------------


def test_nullary_predicate_fact(checker):
    assert checker.check_clause(clause("halt."))


def test_nullary_predicate_rule(checker):
    assert checker.check_clause(clause("run :- halt."))
    assert checker.check_query(query(":- halt, run."))


# -- nested polymorphism --------------------------------------------------------------


def test_nested_list_types(checker):
    report = checker.check_clause(clause("deep(cons(cons(X, nil), nil))."))
    assert report.well_typed
    assert report.typings[0][Var("X")] == T("A")


def test_nested_list_query_commits_inner_type(checker):
    assert checker.check_query(query(":- deep(cons(cons(0, nil), nil))."))
    assert checker.check_query(query(":- deep(nil)."))


# -- multiple type variables per predicate -----------------------------------------------


def test_swap_clause(checker):
    report = checker.check_clause(clause("swap(pair(X, Y), pair(Y, X))."))
    assert report.well_typed
    typing = report.typings[0]
    assert typing[Var("X")] == T("A")
    assert typing[Var("Y")] == T("B")


def test_swap_misuse_rejected(checker):
    # pair(X, X) puts X in both the A and the B context; head type
    # variables are rigid (Definition 16 gives heads no η), so even this
    # innocent-looking clause is rejected — a genuine strictness of the
    # paper's conditions.
    report = checker.check_clause(clause("swap(pair(X, X), pair(X, X))."))
    assert not report.well_typed
    report = checker.check_clause(clause("swap(pair(true, Y), pair(Y, true))."))
    assert not report.well_typed  # head commits A := true


def test_dup_clause(checker):
    assert checker.check_clause(clause("dup(X, pair(X, X))."))


# -- same predicate twice with different commitments ----------------------------------------


def test_independent_commitments_per_occurrence(checker):
    # first/2 used at nat lists and at bool lists in one query: each
    # occurrence renames its own A.
    report = checker.check_query(
        query(":- first(cons(0, nil), X), first(cons(true, nil), Y).")
    )
    assert report.well_typed
    goal_typings = report.typings
    assert goal_typings[0][Var("X")] != goal_typings[1][Var("Y")]


def test_shared_variable_unifies_commitments_via_union(checker):
    # The same X drawn from a nat list and a bool list: both occurrences
    # must agree, and a Definition 16 witness *exists* — the name-based
    # union η(A) = 0 + true covers both.  The checker finds it and the
    # plain-match re-verification confirms the agreeing typings.
    report = checker.check_query(
        query(":- first(cons(0, nil), X), first(cons(true, nil), X).")
    )
    assert report.well_typed
    typing = report.typings[0]
    assert typing[Var("X")] == T("0 + true")


def test_shared_variable_rigid_contexts_still_clash(checker):
    # With *concrete* (uncommittable) predicate types the clash stands:
    # flagged : bool and plus : nat positions cannot be reconciled.
    report = checker.check_query(query(":- flagged(X), plus(X, 0, X)."))
    assert not report.well_typed


def test_two_lists_clause_keeps_variables_apart(checker):
    assert checker.check_clause(clause("two_lists(cons(X, nil), cons(Y, nil))."))
    report = checker.check_clause(clause("two_lists(cons(X, nil), cons(X, nil))."))
    # X : A in one context, X : B in the other — head variables are rigid,
    # so the agreement A = B cannot be satisfied.
    assert not report.well_typed


# -- longer bodies -----------------------------------------------------------------------


def test_long_body_chain(checker):
    report = checker.check_clause(
        clause("treesum(node(L, X, R), S) :- treesum(L, A), treesum(R, B), plus(A, B, C), plus(C, X, S).")
    )
    assert report.well_typed, report.reason


def test_long_body_with_clash_rejected(checker):
    report = checker.check_clause(
        clause("treesum(node(L, X, R), S) :- treesum(L, A), flagged(A).")
    )
    assert not report.well_typed  # A is a nat and a bool
