"""Tests for ClauseReport.explain — the human-readable check account."""

import pytest

from repro.lang import parse_clause, parse_query
from repro.lp import Clause, Query
from repro.workloads import load


@pytest.fixture(scope="module")
def checker():
    return load("list_library").checker


def clause(text):
    parsed = parse_clause(text)
    return Clause(parsed.head, parsed.body)


def query(text):
    return Query(parse_query(text).body)


def test_explain_well_typed_clause(checker):
    report = checker.check_clause(clause("len(cons(X,L),succ(N)) :- len(L,N)."))
    text = report.explain()
    assert text.startswith("well-typed")
    assert "head: len(cons(X, L), succ(N)) : len(list(A), nat)" in text
    assert "goal 1:" in text
    assert "X : A" in text
    assert "L : list(A)" in text
    assert "N : nat" in text


def test_explain_shows_commitments(checker):
    report = checker.check_query(query(":- len(cons(0, nil), N)."))
    text = report.explain()
    assert "commits" in text
    # The list library's len/2 committed its A to a type covering 0.
    assert ":=" in text


def test_explain_rejection_reason(checker):
    report = checker.check_query(query(":- app(nil, 0, 0)."))
    text = report.explain()
    assert text.startswith("NOT well-typed")
    assert "fail" in text


def test_explain_bottom_case(checker):
    from repro.core import PredicateTypeEnv, WellTypedChecker
    from repro.lang import parse_atom
    from repro.workloads import paper_universe

    cset = paper_universe()
    env = PredicateTypeEnv(cset)
    env.declare(parse_atom("s_pair(int, list(A))"))
    strict = WellTypedChecker(cset, env)
    report = strict.check_clause(clause("s_pair(X, X)."))
    text = report.explain()
    assert "NOT well-typed" in text
    assert "⊥" in text


def test_explain_query_goal_numbering(checker):
    report = checker.check_query(query(":- len(nil, N), plus(N, 0, M)."))
    text = report.explain()
    assert "goal 1:" in text
    assert "goal 2:" in text
    assert "head" not in text
