"""The bounded least model of H_C versus both provers (the Section 2
triangle: bottom-up fixpoint == top-down SLD == deterministic strategy)."""

import pytest

from repro.core import NaiveSubtypeProver, SubtypeEngine
from repro.core.fixpoint import LeastModel, expansion_closed_universe
from repro.lang import parse_term as T
from repro.terms import Var
from repro.workloads import paper_universe


SEEDS = [
    "nat", "unnat", "int",
    "0", "succ(0)", "succ(succ(0))", "pred(0)", "pred(pred(0))",
    "succ(nat)", "pred(unnat)",
    "elist", "nil", "foo",
    "list(nat)", "nelist(nat)", "cons(0, nil)", "cons(nat, list(nat))",
]


@pytest.fixture(scope="module")
def model():
    cset = paper_universe()
    universe = expansion_closed_universe(cset, [T(s) for s in SEEDS])
    return cset, LeastModel(cset, universe)


def test_universe_is_closed(model):
    cset, least = model
    for term in least.universe:
        for argument in term.args:
            assert argument in least.universe
        if cset.symbols.is_type_constructor(term.functor):
            for expansion in cset.expansions(term):
                assert expansion in least.universe


def test_universe_rejects_variables():
    cset = paper_universe()
    with pytest.raises(ValueError):
        expansion_closed_universe(cset, [Var("A")])


def test_model_contains_declared_subtypings(model):
    _, least = model
    assert least.holds(T("int"), T("nat"))
    assert least.holds(T("int"), T("unnat"))
    assert least.holds(T("nat"), T("succ(0)"))
    assert least.holds(T("list(nat)"), T("cons(0, nil)"))
    assert least.holds(T("list(nat)"), T("nil"))


def test_model_is_reflexive(model):
    _, least = model
    for term in list(least.universe)[:20]:
        assert least.holds(term, term)


def test_model_excludes_non_subtypings(model):
    _, least = model
    assert not least.holds(T("nat"), T("pred(0)"))
    assert not least.holds(T("nat"), T("int"))
    assert not least.holds(T("elist"), T("cons(0, nil)"))


def test_model_agrees_with_deterministic_engine_everywhere(model):
    """The triangle, leg 1: on every universe pair, lfp(T_{H_C}) and the
    Theorem 1-3 strategy coincide."""
    cset, least = model
    engine = SubtypeEngine(cset)
    universe = sorted(least.universe, key=repr)
    disagreements = [
        (sup, sub)
        for sup in universe
        for sub in universe
        if least.holds(sup, sub) != engine.holds(sup, sub)
    ]
    assert not disagreements, disagreements[:5]


def test_model_agrees_with_naive_prover_on_samples(model):
    """The triangle, leg 2: every model pair is SLD-refutable (spot
    checked — the naive prover cannot decide negatives)."""
    cset, least = model
    prover = NaiveSubtypeProver(cset)
    checked = 0
    for sup, sub in sorted(least.pairs(), key=repr)[:12]:
        verdict = prover.holds(sup, sub)
        if verdict is None:
            continue
        assert verdict is True, (sup, sub)
        checked += 1
    assert checked >= 5


def test_transitivity_inside_model(model):
    _, least = model
    for sup, mid in list(least.pairs())[:50]:
        for sub in list(least.below[mid])[:10]:
            assert least.holds(sup, sub), (sup, mid, sub)


def test_iterations_reported(model):
    _, least = model
    assert least.iterations >= 2  # at least one productive + one stable pass
