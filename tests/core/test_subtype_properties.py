"""Property-based tests of ⪰_C structural laws on the paper universe.

These are the "It can be shown that ..." steps inside the paper's proofs,
checked empirically:

* reflexivity (``t ⪰ t`` from the substitution axioms alone);
* transitivity (used everywhere);
* unifiability implies subtyping (Theorem 2's base case:
  "if t1 and t2 are unifiable, then t1 ⪰_C t2");
* monotonicity under substitution (Theorem 2's inductive step:
  ``τ_i ⪰ τ'_i`` implies ``τ{α↦τ_i} ⪰ τ{α↦τ'_i}``);
* semantic soundness: ``τ1 ⪰ τ2`` implies ``M[τ2] ⊆ M[τ1]`` at every
  bounded depth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeneralTypeSemantics, SubtypeEngine
from repro.lang import parse_term as T
from repro.terms import Struct, Substitution, Var, unifiable
from repro.workloads import paper_universe

type_variables = st.sampled_from([Var("A"), Var("B")])


def _types(depth, with_vars=True):
    leaves = st.sampled_from(
        [T("nat"), T("unnat"), T("int"), T("elist"), T("nil"), T("0"), T("foo")]
    )
    if with_vars:
        leaves = leaves | type_variables
    if depth == 0:
        return leaves
    smaller = _types(depth - 1, with_vars)
    return (
        leaves
        | st.builds(lambda a: Struct("list", (a,)), smaller)
        | st.builds(lambda a: Struct("nelist", (a,)), smaller)
        | st.builds(lambda a: Struct("succ", (a,)), smaller)
        | st.builds(lambda a, b: Struct("cons", (a, b)), smaller, smaller)
        | st.builds(lambda a, b: Struct("+", (a, b)), smaller, smaller)
    )


types = _types(2)
ground_types = _types(2, with_vars=False)


@pytest.fixture(scope="module")
def engine():
    return SubtypeEngine(paper_universe())


@given(ground_types)
@settings(max_examples=200, deadline=None)
def test_reflexivity(type_term):
    engine = SubtypeEngine(paper_universe())
    assert engine.holds(type_term, type_term)


@given(ground_types, ground_types)
@settings(max_examples=300, deadline=None)
def test_unifiable_implies_subtype(left, right):
    # Ground types: unifiable means equal, but keep the general statement.
    engine = SubtypeEngine(paper_universe())
    if unifiable(left, right):
        assert engine.holds(left, right)


@given(types, ground_types)
@settings(max_examples=300, deadline=None)
def test_more_general_implies_holds(sup, sub):
    """Definition 5 is stronger than Definition 3: τ1 ⪰ τ̄2 (no
    instantiation of τ2 allowed) implies τ1 ⪰ τ2."""
    engine = SubtypeEngine(paper_universe())
    if engine.more_general(sup, sub):
        assert engine.holds(sup, sub)


@given(ground_types, ground_types)
@settings(max_examples=200, deadline=None)
def test_monotonicity_under_substitution(tau, tau_prime):
    """τ ⪰ τ' implies list(τ) ⪰ list(τ') and cons(τ, nil) ⪰ cons(τ', nil)."""
    engine = SubtypeEngine(paper_universe())
    if engine.holds(tau, tau_prime):
        assert engine.holds(Struct("list", (tau,)), Struct("list", (tau_prime,)))
        assert engine.holds(
            Struct("cons", (tau, T("nil"))), Struct("cons", (tau_prime, T("nil")))
        )


@given(ground_types, ground_types)
@settings(max_examples=120, deadline=None)
def test_semantic_soundness(sup, sub):
    """τ1 ⪰ τ2 implies M[τ2] ⊆ M[τ1] up to depth 3."""
    cset = paper_universe()
    engine = SubtypeEngine(cset)
    if engine.holds(sup, sub):
        semantics = GeneralTypeSemantics(cset)
        assert semantics.inhabitants(sub, 3) <= semantics.inhabitants(sup, 3)


@given(ground_types)
@settings(max_examples=200, deadline=None)
def test_union_is_upper_bound(component):
    """A + B is above both components, for arbitrary components."""
    engine = SubtypeEngine(paper_universe())
    union = Struct("+", (component, T("nat")))
    assert engine.holds(union, component)
    assert engine.holds(union, T("nat"))


def test_transitivity_through_enumeration(engine):
    """For every chain τ ⪰ σ with σ's inhabitants enumerated, τ contains
    them too (transitivity through the membership level)."""
    cset = paper_universe()
    semantics = GeneralTypeSemantics(cset)
    chains = [("int", "nat"), ("list(nat)", "nelist(nat)"), ("nat + unnat", "nat")]
    for wider_text, narrower_text in chains:
        wider, narrower = T(wider_text), T(narrower_text)
        assert engine.holds(wider, narrower)
        for member in semantics.inhabitants(narrower, 3):
            assert engine.contains(wider, member), (wider_text, member)
