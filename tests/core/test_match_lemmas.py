"""Experiment E5: Lemmas 1–2 about ``match``, checked on random instances.

* Lemma 1 (On Instantiation): if ``match(τ, t) = θ`` then
  ``match(τη, t) = θη`` for any substitution ``η`` mapping variables of
  ``τ`` to types.
* Lemma 2 (On Unification): for variable-disjoint unifiable ``t1, t2``
  both typed under ``τ``, the typing of ``x θ`` under ``x θ1`` agrees with
  ``θ2`` for every ``x ∈ var(t1) ∩ dom(θ)`` — with the corollary that
  ``match(τ, t1θ)`` agrees with both ``match(τ, t1)`` and ``match(τ, t2)``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Matcher, in_agreement, is_typing_result
from repro.lang import parse_term as T
from repro.terms import Struct, Substitution, Var, rename_apart, unify, variables_of
from repro.workloads import paper_universe


@pytest.fixture(scope="module")
def matcher():
    return Matcher(paper_universe(), memoize=False)


# -- strategies over the paper universe -------------------------------------------

type_variables = st.sampled_from([Var("A"), Var("B")])


def _types(depth):
    leaves = type_variables | st.sampled_from(
        [T("nat"), T("unnat"), T("int"), T("elist"), T("nil"), T("0")]
    )
    if depth == 0:
        return leaves
    smaller = _types(depth - 1)
    return (
        leaves
        | st.builds(lambda a: Struct("list", (a,)), smaller)
        | st.builds(lambda a: Struct("nelist", (a,)), smaller)
        | st.builds(lambda a: Struct("succ", (a,)), smaller)
        | st.builds(lambda a, b: Struct("cons", (a, b)), smaller, smaller)
        | st.builds(lambda a, b: Struct("+", (a, b)), smaller, smaller)
    )


term_variables = st.sampled_from([Var("X"), Var("Y"), Var("Z")])


def _terms(depth):
    leaves = term_variables | st.sampled_from([T("nil"), T("0"), T("foo")])
    if depth == 0:
        return leaves
    smaller = _terms(depth - 1)
    return (
        leaves
        | st.builds(lambda a: Struct("succ", (a,)), smaller)
        | st.builds(lambda a: Struct("pred", (a,)), smaller)
        | st.builds(lambda a, b: Struct("cons", (a, b)), smaller, smaller)
    )


types = _types(2)
terms = _terms(2)
etas = st.dictionaries(
    type_variables, st.sampled_from([T("nat"), T("int"), T("list(int)"), T("elist")]),
    min_size=0, max_size=2,
)


# -- Lemma 1 ------------------------------------------------------------------------


@given(types, terms, etas)
@settings(max_examples=400, deadline=None)
def test_lemma1_instantiation_propagates(type_term, term, eta_bindings):
    matcher = Matcher(paper_universe(), memoize=False)
    result = matcher.match(type_term, term)
    if not is_typing_result(result):
        return
    eta = Substitution(eta_bindings)
    instantiated = matcher.match(eta.apply(type_term), term)
    expected = Substitution({var: eta.apply(value) for var, value in result.items()})
    assert instantiated == expected


def test_lemma1_concrete_example(matcher):
    # match(list(A), cons(X, L)) = {X ↦ A, L ↦ list(A)}; instantiating
    # A ↦ int must give {X ↦ int, L ↦ list(int)}.
    eta = Substitution({Var("A"): T("int")})
    base = matcher.match(T("list(A)"), T("cons(X, L)"))
    inst = matcher.match(T("list(int)"), T("cons(X, L)"))
    assert inst == Substitution({v: eta.apply(t) for v, t in base.items()})


# -- Lemma 2 ------------------------------------------------------------------------


@given(types, terms, terms)
@settings(max_examples=400, deadline=None)
def test_lemma2_unification_agreement(type_term, term1, term2):
    matcher = Matcher(paper_universe(), memoize=False)
    # Ensure variable disjointness by renaming t2 apart.
    term2, _ = rename_apart(term2)
    theta = unify(term1, term2)
    if theta is None:
        return
    theta1 = matcher.match(type_term, term1)
    theta2 = matcher.match(type_term, term2)
    if not (is_typing_result(theta1) and is_typing_result(theta2)):
        return
    for var in variables_of(term1) & theta.domain:
        inner = matcher.match(theta1.apply(var), theta.apply(var))
        if is_typing_result(inner):
            assert in_agreement([inner, theta2]), (type_term, term1, term2, var)


@given(types, terms, terms)
@settings(max_examples=400, deadline=None)
def test_lemma2_corollary_agreement_of_instantiated_match(type_term, term1, term2):
    # "A corollary ... match(τ, t1θ), match(τ, t1), and match(τ, t2) are
    # in agreement."
    matcher = Matcher(paper_universe(), memoize=False)
    term2, _ = rename_apart(term2)
    theta = unify(term1, term2)
    if theta is None:
        return
    theta1 = matcher.match(type_term, term1)
    theta2 = matcher.match(type_term, term2)
    if not (is_typing_result(theta1) and is_typing_result(theta2)):
        return
    instantiated = matcher.match(type_term, theta.apply(term1))
    if is_typing_result(instantiated):
        assert in_agreement([instantiated, theta1, theta2])


def test_lemma2_concrete_example(matcher):
    # τ = list(int), t1 = cons(X, L), t2 = cons(0, cons(Y, nil)).
    t1, t2 = T("cons(X, L)"), T("cons(0, cons(Y, nil))")
    theta = unify(t1, t2)
    theta1 = matcher.match(T("list(int)"), t1)
    theta2 = matcher.match(T("list(int)"), t2)
    assert is_typing_result(theta1) and is_typing_result(theta2)
    for var in [Var("X"), Var("L")]:
        inner = matcher.match(theta1.apply(var), theta.apply(var))
        assert is_typing_result(inner)
        assert in_agreement([inner, theta2])
