"""Tests for the constraint-collecting match (Section 7's checker engine)."""

import pytest

from repro.core import ConstraintMatcher, MATCH_BOTTOM, MATCH_FAIL, Matcher
from repro.lang import parse_term as T
from repro.terms import Substitution, Var
from repro.workloads import paper_universe


@pytest.fixture(scope="module")
def cmatcher():
    return ConstraintMatcher(paper_universe())


def test_behaves_like_match_without_solvables(cmatcher):
    matcher = Matcher(paper_universe())
    cases = [
        ("list(A)", "X"),
        ("list(nat)", "cons(X, L)"),
        ("int", "cons(X, Y)"),
        ("nat", "succ(succ(X))"),
    ]
    for type_text, term_text in cases:
        plain = matcher.match(T(type_text), T(term_text))
        collected = cmatcher.match(T(type_text), T(term_text), set())
        assert collected.result == plain
        assert collected.equations == ()


def test_rigid_variable_still_bottom(cmatcher):
    outcome = cmatcher.match(Var("A"), T("succ(X)"), set())
    assert outcome.result is MATCH_BOTTOM


def test_solvable_variable_grows_shape(cmatcher):
    alpha = Var("A")
    solvable = {alpha}
    outcome = cmatcher.match(alpha, T("succ(X)"), solvable)
    assert isinstance(outcome.result, Substitution)
    assert len(outcome.equations) == 1
    var, shape = outcome.equations[0]
    assert var == alpha
    assert shape.functor == "succ"
    assert len(shape.args) == 1
    # The fresh shape argument is now solvable and types X.
    beta = shape.args[0]
    assert beta in solvable
    assert outcome.result[Var("X")] == beta


def test_solvable_against_ground_records_cover(cmatcher):
    # A ground term does not force a shape — it records a cover
    # constraint so the solver can pick a *named* covering type.
    alpha = Var("A")
    outcome = cmatcher.match(alpha, T("nil"), {alpha})
    assert outcome.result == Substitution()
    assert outcome.equations == ()
    assert outcome.covers == ((alpha, T("nil")),)


def test_nested_shapes(cmatcher):
    alpha = Var("A")
    solvable = {alpha}
    outcome = cmatcher.match(alpha, T("cons(succ(X), nil)"), solvable)
    assert isinstance(outcome.result, Substitution)
    # α = cons(β1, β2), β1 = succ(γ) for the non-ground spine; the ground
    # leaf nil becomes a cover constraint on β2.
    functors = [shape.functor for _, shape in outcome.equations]
    assert functors == ["cons", "succ"]
    assert len(outcome.covers) == 1
    assert outcome.covers[0][1] == T("nil")


def test_solvable_inside_polymorphic_type(cmatcher):
    # The common checker case: a renamed predicate-type variable inside a
    # constructor type — list(α) against a concrete list skeleton.
    alpha = Var("E1")
    solvable = {alpha}
    outcome = cmatcher.match(T("list(E1)"), T("cons(X, nil)"), solvable)
    assert isinstance(outcome.result, Substitution)
    assert outcome.result[Var("X")] == alpha
    assert outcome.equations == ()


def test_shape_equation_only_from_chosen_branch(cmatcher):
    # Failing expansion branches must not leak equations.
    alpha = Var("E1")
    outcome = cmatcher.match(T("list(E1)"), T("cons(succ(X), nil)"), {alpha})
    # The elist branch fails; nelist succeeds and routes succ(X) to E1,
    # producing exactly one shape equation for E1.
    assert isinstance(outcome.result, Substitution)
    assert len(outcome.equations) == 1
    assert outcome.equations[0][0] == alpha


def test_fail_propagates(cmatcher):
    outcome = cmatcher.match(T("int"), T("cons(X, Y)"), set())
    assert outcome.result is MATCH_FAIL
    assert outcome.equations == ()
