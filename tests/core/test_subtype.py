"""Experiments E1/E2: the deterministic subtype engine (Theorems 1–3).

Covers the paper's worked derivations, the structural properties of ⪰_C,
the Definition 5 more-general examples, and differential agreement with
the definitional oracles (naive SLD prover and enumeration semantics).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GeneralTypeSemantics,
    NaiveSubtypeProver,
    RestrictionViolation,
    SubtypeEngine,
)
from repro.lang import parse_term as T
from repro.terms import Var, struct, term_depth
from repro.workloads import (
    deep_int,
    deep_nat,
    ids_nonuniform,
    nat_list,
    paper_universe,
    random_guarded_constraint_set,
    random_subtype_pair,
    rich_universe,
)


@pytest.fixture(scope="module")
def engine():
    return SubtypeEngine(paper_universe())


# -- the paper's own derivations (Sections 1-2) -----------------------------------


def test_section2_example_cons_foo_nil(engine):
    # The worked SLD-refutation: cons(foo, nil) ∈ M[list(A)].
    assert engine.contains(T("list(A)"), T("cons(foo,nil)"))


def test_nat_elements(engine):
    # "elements 0, succ(0), pred(0), succ(succ(0)), etc."
    assert engine.contains(T("nat"), T("0"))
    assert engine.contains(T("nat"), T("succ(0)"))
    assert engine.contains(T("nat"), T("succ(succ(0))"))
    assert not engine.contains(T("nat"), T("pred(0)"))


def test_unnat_elements(engine):
    assert engine.contains(T("unnat"), T("0"))
    assert engine.contains(T("unnat"), T("pred(0)"))
    assert not engine.contains(T("unnat"), T("succ(0)"))


def test_int_contains_both(engine):
    for text in ["0", "succ(0)", "pred(0)", "succ(succ(0))", "pred(pred(0))"]:
        assert engine.contains(T("int"), T(text)), text
    # int does not contain mixed towers: succ(pred(0)) is neither nat nor unnat.
    assert not engine.contains(T("int"), T("succ(pred(0))"))


def test_subtype_declarations_hold(engine):
    assert engine.holds(T("int"), T("nat"))
    assert engine.holds(T("int"), T("unnat"))
    assert not engine.holds(T("nat"), T("int"))
    assert engine.holds(T("list(A)"), T("elist"))
    assert engine.holds(T("list(B)"), T("nelist(B)"))


def test_union_behaves_like_upper_bound(engine):
    assert engine.holds(T("nat + unnat"), T("nat"))
    assert engine.holds(T("nat + unnat"), T("unnat"))
    assert engine.contains(T("nat + unnat"), T("pred(0)"))


def test_list_membership(engine):
    assert engine.contains(T("list(nat)"), T("nil"))
    assert engine.contains(T("list(nat)"), T("cons(0, nil)"))
    assert engine.contains(T("list(nat)"), T("cons(succ(0), cons(0, nil))"))
    assert not engine.contains(T("list(nat)"), T("cons(pred(0), nil)"))
    assert not engine.contains(T("nelist(nat)"), T("nil"))
    assert engine.contains(T("elist"), T("nil"))


def test_function_symbols_are_type_constructors(engine):
    # Definition 1: f(τ1,...,τn) is itself a type.
    assert engine.contains(T("cons(nat, elist)"), T("cons(0, nil)"))
    assert not engine.contains(T("cons(nat, elist)"), T("cons(0, cons(0, nil))"))
    assert engine.contains(T("succ(nat)"), T("succ(succ(0))"))
    assert not engine.contains(T("succ(nat)"), T("0"))


# -- Definition 5: more general -----------------------------------------------------


def test_more_general_paper_examples(engine):
    # "list(A) is more general than nelist(int) but list(int) is not more
    # general than nelist(A)."
    assert engine.more_general(T("list(A)"), T("nelist(int)"))
    assert not engine.more_general(T("list(int)"), T("nelist(A)"))


def test_more_general_is_reflexive(engine):
    for text in ["list(A)", "nat", "cons(A, list(A))", "int + list(B)"]:
        assert engine.more_general(T(text), T(text)), text


def test_more_general_variable_tops_everything(engine):
    assert engine.more_general(T("A"), T("list(int)"))
    assert engine.more_general(T("A"), T("B"))
    assert not engine.more_general(T("list(int)"), T("A"))


def test_equivalent(engine):
    assert engine.equivalent(T("list(A)"), T("list(B)"))
    assert not engine.equivalent(T("list(A)"), T("nelist(A)"))


# -- structural properties ------------------------------------------------------------


def test_reflexivity_fast_path(engine):
    assert engine.holds(T("list(A)"), T("list(A)"))
    assert engine.holds(T("X"), T("X"))


def test_transitivity_on_samples(engine):
    chains = [
        ("int", "nat", "0"),
        ("list(A)", "nelist(A)", "cons(foo, nil)"),
        ("int + list(A)", "int", "nat"),
    ]
    for a, b, c in chains:
        assert engine.holds(T(a), T(b))
        assert engine.holds(T(b), T(c))
        assert engine.holds(T(a), T(c)), (a, c)


def test_requires_uniform_and_guarded():
    with pytest.raises(RestrictionViolation):
        SubtypeEngine(ids_nonuniform())


def test_memoization_does_not_change_answers():
    cached = SubtypeEngine(paper_universe(), memoize=True)
    plain = SubtypeEngine(paper_universe(), memoize=False)
    cases = [
        ("list(nat)", "cons(0, nil)"),
        ("nat", "pred(0)"),
        ("int", "succ(succ(0))"),
        ("nelist(int)", "nil"),
    ]
    for sup, sub in cases:
        assert cached.holds(T(sup), T(sub)) == plain.holds(T(sup), T(sub))
    assert cached.stats.memo_entries > 0


def test_deep_members_scale(engine):
    assert engine.contains(T("nat"), deep_nat(200))
    assert engine.contains(T("int"), deep_int(200))
    assert engine.contains(T("list(nat)"), nat_list(100))
    assert not engine.contains(T("nat"), deep_int(200))


# -- differential: deterministic strategy vs the definitional oracles -----------------


def test_agrees_with_naive_prover_on_positives(engine):
    naive = NaiveSubtypeProver(paper_universe())
    positives = [
        ("list(A)", "cons(foo,nil)"),
        ("int", "succ(0)"),
        ("nat", "succ(succ(0))"),
        ("elist", "nil"),
        ("int", "nat"),
        ("list(A)", "elist"),
    ]
    for sup, sub in positives:
        assert engine.holds(T(sup), T(sub)), (sup, sub)
        assert naive.holds(T(sup), T(sub)) is True, (sup, sub)


def test_naive_never_contradicts_engine():
    naive = NaiveSubtypeProver(paper_universe(), step_limit=20_000)
    engine = SubtypeEngine(paper_universe())
    rng = random.Random(7)
    cset = paper_universe()
    checked = 0
    for _ in range(25):
        sup, sub = random_subtype_pair(rng, cset, depth=2, member_depth=3)
        fast = engine.holds(sup, sub)
        slow = naive.holds(sup, sub)
        if slow is None:
            # Budget exhausted: no verdict, but the prover must say which
            # budget gave out (machine-readable exhaustion reason).
            assert naive.last_exhaustion in ("depth", "steps"), (sup, sub)
            continue
        assert naive.last_exhaustion is None, (sup, sub)
        checked += 1
        assert fast == slow, (sup, sub)
    assert checked >= 1


def test_agrees_with_enumeration_semantics():
    cset = rich_universe()
    engine = SubtypeEngine(cset)
    semantics = GeneralTypeSemantics(cset)
    rng = random.Random(11)
    for _ in range(40):
        sup, sub = random_subtype_pair(rng, cset, depth=2, member_depth=3)
        # For a ground candidate of depth d: membership by engine must
        # equal membership by enumeration at that depth.
        depth = term_depth(sub)
        in_enumeration = sub in semantics.inhabitants(sup, depth)
        assert engine.holds(sup, sub) == in_enumeration, (sup, sub)


def test_random_guarded_sets_accept_engine_construction():
    rng = random.Random(3)
    for seed in range(5):
        cset = random_guarded_constraint_set(random.Random(seed))
        SubtypeEngine(cset)  # restrictions hold by construction


def test_engine_decides_negatives_quickly():
    # The whole point versus the naive prover: refutations of *failing*
    # goals terminate (Theorem 3).
    engine = SubtypeEngine(paper_universe())
    assert not engine.holds(T("nat"), T("pred(0)"))
    assert not engine.holds(T("elist"), T("cons(foo, nil)"))
    assert not engine.holds(T("nelist(nat)"), T("cons(pred(0), nil)"))
