"""Experiment E8: filter/conversion predicates (Section 7).

Reproduces the paper's ``int2nat`` and makes the open problem executable:
the paper-style *shallow* filter is well-typed but only checks the top
constructor, while the semantically exact *deep* filter is rejected by
Definition 16 — the trade-off behind "we are currently exploring a more
general solution to this problem based on this notion of filtering".
"""

import pytest

from repro.core import (
    GeneralTypeSemantics,
    PredicateTypeEnv,
    WellTypedChecker,
    constructor_shapes,
    deep_filter,
    shallow_filter,
)
from repro.lang import parse_term as T
from repro.lp import Database, solve
from repro.terms import Var, fresh_variable, struct
from repro.workloads import deep_nat, paper_universe


@pytest.fixture(scope="module")
def cset():
    return paper_universe()


# -- constructor shapes --------------------------------------------------------------


def test_shapes_of_nat(cset):
    shapes = constructor_shapes(cset, T("nat"))
    assert {str(s) for s in shapes} == {"0", "succ(nat)"}


def test_shapes_of_int(cset):
    shapes = constructor_shapes(cset, T("int"))
    assert {str(s) for s in shapes} == {"0", "succ(nat)", "pred(unnat)"}


def test_shapes_of_list(cset):
    shapes = constructor_shapes(cset, T("list(A)"))
    assert {str(s) for s in shapes} == {"nil", "cons(A, list(A))"}


def test_shapes_of_function_type(cset):
    assert constructor_shapes(cset, T("succ(nat)")) == [T("succ(nat)")]


def test_shapes_of_variable_type(cset):
    shapes = constructor_shapes(cset, T("A + nat"))
    assert Var("A") in shapes


# -- the paper's int2nat, generated -----------------------------------------------------


def test_shallow_filter_reproduces_int2nat(cset):
    definition = shallow_filter(cset, "int2nat", T("int"), T("nat"))
    rendered = sorted(str(c) for c in definition.program)
    assert len(rendered) == 2
    assert rendered[0] == "int2nat(0, 0)."
    assert rendered[1].startswith("int2nat(succ(")
    # Same pattern on both sides, exactly like the paper's clause.
    clause = definition.program.clauses[1]
    assert clause.head.args[0] == clause.head.args[1]


def test_shallow_filter_is_well_typed(cset):
    definition = shallow_filter(cset, "int2nat", T("int"), T("nat"))
    predicate_types = PredicateTypeEnv(cset)
    for declared in definition.predicate_types:
        predicate_types.declare(declared)
    checker = WellTypedChecker(cset, predicate_types)
    report = checker.check_program(definition.program)
    assert report.well_typed, [r.reason for _, r in report.failures()]


def test_shallow_filter_checks_only_top_constructor(cset):
    # The paper's own filter accepts succ(pred(0)) — the executable
    # demonstration of why filtering is an open problem.
    definition = shallow_filter(cset, "int2nat", T("int"), T("nat"))
    database = Database(definition.program)
    good = solve(database, [struct("int2nat", T("succ(0)"), Var("R"))])
    assert len(good.answers) == 1
    rejected = solve(database, [struct("int2nat", T("pred(0)"), Var("R"))])
    assert rejected.answers == []
    shallow_leak = solve(database, [struct("int2nat", T("succ(pred(0))"), Var("R"))])
    assert len(shallow_leak.answers) == 1  # the leak


# -- the deep (exact) filter -------------------------------------------------------------


def test_deep_filter_is_semantically_exact(cset):
    definition = deep_filter(cset, "to_nat", T("nat"))
    database = Database(definition.program)
    semantics = GeneralTypeSemantics(cset)
    members = semantics.inhabitants(T("nat"), 4)
    universe = semantics.inhabitants(T("int"), 4)
    for term in sorted(universe, key=repr):
        result = solve(database, [struct("to_nat", term, Var("R"))])
        assert bool(result.answers) == (term in members), term
        if result.answers:
            assert result.answers[0].apply(Var("R")) == term


def test_deep_filter_closes_the_shallow_leak(cset):
    definition = deep_filter(cset, "to_nat", T("nat"))
    database = Database(definition.program)
    leak = solve(database, [struct("to_nat", T("succ(pred(0))"), Var("R"))])
    assert leak.answers == []
    deep = solve(database, [struct("to_nat", deep_nat(50), Var("R"))])
    assert len(deep.answers) == 1


def test_deep_filter_recursive_clauses_not_well_typed(cset):
    # The punchline: the exact filter cannot be expressed well-typedly —
    # its recursive clause types the same variable at both the source and
    # the target type.
    definition = deep_filter(cset, "to_nat", T("nat"))
    predicate_types = PredicateTypeEnv(cset)
    for declared in definition.predicate_types:
        predicate_types.declare(declared)
    checker = WellTypedChecker(cset, predicate_types)
    report = checker.check_program(definition.program)
    assert not report.well_typed
    # Specifically the recursive succ clause is the one rejected.
    rejected = [str(clause) for clause, _ in report.failures()]
    assert any("succ" in text for text in rejected)


def test_deep_filter_on_polymorphic_list(cset):
    definition = deep_filter(cset, "to_natlist", T("list(nat)"))
    database = Database(definition.program)
    good = solve(
        database, [struct("to_natlist", T("cons(succ(0), cons(0, nil))"), Var("R"))]
    )
    assert len(good.answers) == 1
    bad = solve(
        database, [struct("to_natlist", T("cons(pred(0), nil)"), Var("R"))]
    )
    assert bad.answers == []


def test_filter_names_are_distinct(cset):
    definition = deep_filter(cset, "f", T("list(nat)"))
    names = [p.functor for p in definition.predicate_types]
    assert len(names) == len(set(names))
    assert names[0] == "f"
