"""Tests for explicit SLD-refutation construction and replay verification.

The centrepiece reproduces the paper's Section 2 worked derivation of
``cons(foo, nil) ∈ M[[list(A)]]`` and replays it against ``H_C`` with
nothing but unification.
"""

import pytest

from repro.core import SubtypeEngine
from repro.core.derivation import DerivationBuilder, verify_derivation
from repro.lang import parse_term as T
from repro.workloads import deep_nat, paper_universe


@pytest.fixture(scope="module")
def builder():
    return DerivationBuilder(paper_universe())


def test_section2_worked_derivation(builder):
    derivation = builder.derive(T("list(A)"), T("cons(foo,nil)"))
    assert derivation is not None
    rendered = derivation.render()
    # The paper's refutation goes through nelist and the cons substitution
    # axiom; the display must show those waypoints.
    assert "list(A)" in rendered or "list(foo)" in rendered
    assert "nelist" in rendered
    assert "cons" in rendered
    assert verify_derivation(derivation)


def test_derivation_none_when_not_subtype(builder):
    assert builder.derive(T("nat"), T("pred(0)")) is None
    assert builder.derive(T("elist"), T("cons(foo,nil)")) is None


def test_derivation_simple_constant(builder):
    derivation = builder.derive(T("elist"), T("nil"))
    assert derivation is not None
    # Two steps of two-step application: transitivity + the elist fact,
    # then the nil reflexivity (substitution axiom).
    rules = [step.rule for step in derivation.steps]
    assert rules == ["transitivity", "constraint", "substitution"]
    assert verify_derivation(derivation)


def test_every_step_resolvent_shrinks_to_empty(builder):
    derivation = builder.derive(T("int"), T("succ(succ(0))"))
    assert derivation is not None
    assert derivation.steps[-1].resolvent == ()
    assert verify_derivation(derivation)


def test_derivations_agree_with_engine(builder):
    engine = SubtypeEngine(paper_universe())
    cases = [
        ("list(nat)", "cons(0, nil)"),
        ("int", "pred(0)"),
        ("nat + unnat", "pred(pred(0))"),
        ("list(A)", "nil"),
        ("cons(nat, elist)", "cons(0, nil)"),
        ("nelist(int)", "cons(pred(0), nil)"),
    ]
    for sup, sub in cases:
        expected = engine.holds(T(sup), T(sub))
        derivation = builder.derive(T(sup), T(sub))
        assert (derivation is not None) == expected, (sup, sub)
        if derivation is not None:
            assert verify_derivation(derivation), (sup, sub)


def test_derivation_length_tracks_term_depth(builder):
    shallow = builder.derive(T("nat"), deep_nat(2))
    deep = builder.derive(T("nat"), deep_nat(20))
    assert shallow is not None and deep is not None
    assert deep.length > shallow.length
    assert verify_derivation(deep)


def test_tampered_derivation_rejected(builder):
    from repro.core.derivation import Derivation, DerivationStep

    derivation = builder.derive(T("elist"), T("nil"))
    assert derivation is not None
    # Drop the final step: the refutation no longer reaches the empty clause.
    truncated = Derivation(derivation.goal, derivation.steps[:-1])
    assert not verify_derivation(truncated)
    # Swap a clause: the step no longer resolves.
    wrong_clause = derivation.steps[-1].clause
    tampered_steps = list(derivation.steps)
    tampered_steps[0] = DerivationStep(
        "substitution", wrong_clause, derivation.steps[0].resolvent
    )
    tampered = Derivation(derivation.goal, tampered_steps)
    assert not verify_derivation(tampered)


def test_render_starts_with_goal(builder):
    derivation = builder.derive(T("nat"), T("succ(0)"))
    assert derivation is not None
    first_line = derivation.render().splitlines()[0]
    assert first_line == ":- nat >= succ(0)."
