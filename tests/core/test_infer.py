"""Tests for name-based common-type inference (repro.core.infer)."""

import pytest

from repro.core import CommonTypeInference, SubtypeEngine
from repro.lang import parse_term as T
from repro.terms import Var, variables_of
from repro.workloads import paper_universe, rich_universe


@pytest.fixture(scope="module")
def inference():
    return CommonTypeInference(paper_universe())


@pytest.fixture(scope="module")
def engine():
    return SubtypeEngine(paper_universe())


def test_singleton_is_itself(inference):
    assert inference.infer([T("succ(0)")]) == T("succ(0)")
    assert inference.infer([T("nil")]) == T("nil")


def test_nat_from_mixed_naturals(inference, engine):
    inferred = inference.infer([T("0"), T("succ(0)")])
    assert inferred == T("nat")
    # nat is first in declaration order among the covers; int also covers.
    assert engine.contains(inferred, T("0"))
    assert engine.contains(inferred, T("succ(0)"))


def test_int_when_nat_insufficient(inference):
    inferred = inference.infer([T("succ(0)"), T("pred(0)")])
    assert inferred == T("int")


def test_list_with_inferred_element(inference):
    inferred = inference.infer([T("nil"), T("cons(0, nil)")])
    assert inferred == T("list(0)")  # minimal: the only covered element is 0


def test_list_with_union_elements(inference):
    inferred = inference.infer([T("cons(0, nil)"), T("cons(succ(0), nil)")])
    # Elements {0, succ(0)} infer to nat; list(nat) or nelist(nat) both
    # cover — nelist comes first in declaration order.
    assert inferred in (T("nelist(nat)"), T("list(nat)"))


def test_common_functor_fallback(inference):
    # succ-towers of different heights: no 0-ary type needed, but nat
    # already covers; make a case the constructors cannot cover.
    inferred = inference.infer([T("cons(0, nil)"), T("cons(pred(0), nil)")])
    # Elements {0, pred(0)} -> unnat; wrapped back through nelist/list.
    assert inferred is not None
    engine = SubtypeEngine(paper_universe())
    assert engine.contains(inferred, T("cons(0, nil)"))
    assert engine.contains(inferred, T("cons(pred(0), nil)"))


def test_unrelated_terms_fall_back_to_union(inference, engine):
    # nil and 0 share no declared constructor and no functor — the union
    # fallback commits to the singleton union nil + 0.
    inferred = inference.infer([T("nil"), T("0")])
    assert inferred == T("nil + 0")
    assert engine.contains(inferred, T("nil"))
    assert engine.contains(inferred, T("0"))


def test_empty_and_nonground_rejected(inference):
    assert inference.infer([]) is None
    assert inference.infer([T("cons(X, nil)")]) is None


def test_duplicates_collapse(inference):
    assert inference.infer([T("0"), T("0"), T("0")]) == T("0")


def test_polymorphic_tree(engine):
    cset = rich_universe()
    inference = CommonTypeInference(cset)
    inferred = inference.infer([T("leaf(true)"), T("node(leaf(true), false, leaf(true))")])
    assert inferred is not None
    tree_engine = SubtypeEngine(cset)
    assert tree_engine.contains(inferred, T("leaf(true)"))
    assert tree_engine.contains(inferred, T("node(leaf(true), false, leaf(true))"))


def test_inferred_type_always_covers(engine, inference):
    """Whatever infer returns must cover every input (soundness)."""
    groups = [
        ["0", "succ(succ(0))"],
        ["pred(0)", "0"],
        ["nil", "cons(succ(0), nil)"],
        ["cons(0, cons(0, nil))", "cons(succ(0), nil)"],
    ]
    for texts in groups:
        terms = [T(t) for t in texts]
        inferred = inference.infer(terms)
        assert inferred is not None, texts
        for term in terms:
            assert engine.contains(inferred, term), (texts, inferred)


# -- the preference order, explicitly -----------------------------------------
#
# infer() commits to the first applicable rung of a fixed ladder:
#   1. a single distinct term is returned as-is (exact observation);
#   2. a declared type constructor covering every term, in declaration
#      order (minimal before looser ones);
#   3. a shared outermost functor, recursing on the argument columns;
#   4. the union of the (distinct) terms.


def test_preference_singleton_beats_covering_type(inference):
    # 0 is covered by nat and int, but the exact term wins.
    assert inference.infer([T("0")]) == T("0")


def test_preference_declared_constructor_beats_common_functor(inference):
    # Both terms share the functor succ, so rung 3 could build
    # succ(0 + succ(0)) — but nat covers both and takes precedence.
    assert inference.infer([T("succ(0)"), T("succ(succ(0))")]) == T("nat")


def test_preference_common_functor_beats_union(inference, engine):
    # No declared type contains succ(nil), so rung 2 fails; the shared
    # functor rung recurses on the argument column instead of committing
    # to the top-level union succ(nil) + succ(0).
    inferred = inference.infer([T("succ(nil)"), T("succ(0)")])
    assert inferred == T("succ(nil + 0)")
    assert engine.contains(inferred, T("succ(nil)"))
    assert engine.contains(inferred, T("succ(0)"))


def test_preference_union_is_the_last_resort(inference):
    # Different functors, no cover: nothing left but the union.
    assert inference.infer([T("nil"), T("0")]) == T("nil + 0")


def test_nonground_terms_are_uninferable_at_any_depth(inference):
    # The paper's name-based inference speaks only about ground
    # observations; a variable anywhere makes the group uninferable.
    assert inference.infer([T("X")]) is None
    assert inference.infer([T("cons(cons(X, nil), nil)")]) is None
    assert inference.infer([T("0"), T("succ(X)")]) is None
