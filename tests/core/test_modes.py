"""Experiment E9: the Section 7 IN/OUT modes extension.

The paper's scenario: with ``PRED p(nat)`` and ``PRED q(int)`` the query
``:- p(X), q(X).`` is dangerous because information may flow int → nat
(``q`` instantiating ``X`` to ``pred(0)``).  Modes fix the direction:
``p(OUT nat), q(IN int)`` is safe (nat flows into int), the reverse is
not.
"""

import pytest

from repro.core import (
    DeclarationError,
    IN,
    OUT,
    ModeChecker,
    ModeEnv,
    PredicateTypeEnv,
)
from repro.lang import parse_atom, parse_clause, parse_query
from repro.lp import Clause, Query
from repro.workloads import paper_universe


@pytest.fixture()
def setting():
    cset = paper_universe()
    predicate_types = PredicateTypeEnv(cset)
    for decl in [
        "p(nat)",
        "q(int)",
        "gen(nat)",
        "use(nat)",
        "plus(nat,nat,nat)",
    ]:
        predicate_types.declare(parse_atom(decl))
    modes = ModeEnv()
    return cset, predicate_types, modes


def checker_for(setting):
    cset, predicate_types, modes = setting
    return ModeChecker(cset, predicate_types, modes)


def query(text):
    return Query(parse_query(text).body)


def clause(text):
    parsed = parse_clause(text)
    return Clause(parsed.head, parsed.body)


# -- the paper's example ---------------------------------------------------------


def test_out_nat_into_in_int_accepted(setting):
    cset, predicate_types, modes = setting
    modes.declare("p", [OUT])
    modes.declare("q", [IN])
    checker = checker_for(setting)
    report = checker.check_query(query(":- p(X), q(X)."))
    assert report.ok, [str(v) for v in report.violations]


def test_out_int_into_in_nat_rejected(setting):
    # The wrong direction: an int producer feeding a nat consumer.
    cset, predicate_types, modes = setting
    modes.declare("p", [IN])
    modes.declare("q", [OUT])
    checker = checker_for(setting)
    report = checker.check_query(query(":- q(X), p(X)."))
    assert not report.ok
    violation = report.violations[0]
    assert "int" in violation.reason and "nat" in violation.reason


def test_consumed_before_produced_rejected(setting):
    cset, predicate_types, modes = setting
    modes.declare("p", [OUT])
    modes.declare("q", [IN])
    checker = checker_for(setting)
    # q consumes X before p produced it.
    report = checker.check_query(query(":- q(X), p(X)."))
    assert not report.ok
    assert "before being produced" in report.violations[0].reason


def test_same_type_flow_accepted(setting):
    cset, predicate_types, modes = setting
    modes.declare("gen", [OUT])
    modes.declare("use", [IN])
    checker = checker_for(setting)
    assert checker.check_query(query(":- gen(X), use(X)."))


def test_unmoded_predicates_are_permissive(setting):
    checker = checker_for(setting)
    # Without declarations every body position produces: no violations.
    assert checker.check_query(query(":- p(X), q(X)."))


# -- clause-level checking -----------------------------------------------------------


def test_clause_head_in_produces(setting):
    cset, predicate_types, modes = setting
    modes.declare("plus", [IN, IN, OUT])
    checker = checker_for(setting)
    report = checker.check_clause(clause("plus(0, N, N)."))
    assert report.ok, [str(v) for v in report.violations]


def test_clause_recursive_flow(setting):
    cset, predicate_types, modes = setting
    modes.declare("plus", [IN, IN, OUT])
    checker = checker_for(setting)
    report = checker.check_clause(
        clause("plus(succ(M), N, succ(K)) :- plus(M, N, K).")
    )
    assert report.ok, [str(v) for v in report.violations]


def test_clause_head_out_must_be_produced(setting):
    cset, predicate_types, modes = setting
    modes.declare("gen", [OUT])
    checker = checker_for(setting)
    # gen(X). with X never produced anywhere: the head OUT is unfulfilled.
    report = checker.check_clause(clause("gen(X)."))
    assert not report.ok


def test_ground_head_out_is_fine(setting):
    cset, predicate_types, modes = setting
    modes.declare("gen", [OUT])
    checker = checker_for(setting)
    # No variables: nothing to produce.
    report = checker.check_clause(clause("gen(0)."))
    assert report.ok


def test_check_program(setting):
    from repro.lp import Program

    cset, predicate_types, modes = setting
    modes.declare("plus", [IN, IN, OUT])
    checker = checker_for(setting)
    program = Program(
        [clause("plus(0, N, N)."), clause("plus(succ(M), N, succ(K)) :- plus(M, N, K).")]
    )
    results = checker.check_program(program)
    assert all(report.ok for _, report in results)


# -- declarations -----------------------------------------------------------------------


def test_mode_env_validates():
    modes = ModeEnv()
    with pytest.raises(DeclarationError):
        modes.declare("p", ["SIDEWAYS"])


def test_mode_env_conflict():
    modes = ModeEnv()
    modes.declare("p", [IN])
    with pytest.raises(DeclarationError):
        modes.declare("p", [OUT])
    modes.declare("p", [IN])  # identical re-declaration is fine


# -- edge cases: non-variable arguments --------------------------------------


def test_ground_argument_in_in_position_is_fine(setting):
    cset, predicate_types, modes = setting
    modes.declare("q", [IN])
    checker = checker_for(setting)
    report = checker.check_query(query(":- q(pred(zero))."))
    assert report.ok


def test_compound_out_argument_produces_its_variables(setting):
    # gen(succ(X)) in an OUT position binds X; the later IN consumption
    # sees a production, not an unproduced variable.
    cset, predicate_types, modes = setting
    modes.declare("gen", [OUT])
    modes.declare("use", [IN])
    checker = checker_for(setting)
    report = checker.check_query(query(":- gen(succ(X)), use(X)."))
    assert report.ok, [str(v) for v in report.violations]


# -- edge cases: repeated variables ------------------------------------------


def test_repeated_variable_in_two_in_positions_unproduced(setting):
    cset, predicate_types, modes = setting
    modes.declare("plus", [IN, IN, OUT])
    checker = checker_for(setting)
    report = checker.check_query(query(":- plus(X, X, Y)."))
    assert not report.ok
    # Both IN occurrences are reported, each as an unproduced consumption.
    assert len(report.violations) == 2
    assert all(v.kind == "unproduced" for v in report.violations)
    assert {v.position for v in report.violations} == {0, 1}


def test_repeated_variable_after_production_is_fine(setting):
    cset, predicate_types, modes = setting
    modes.declare("gen", [OUT])
    modes.declare("plus", [IN, IN, OUT])
    checker = checker_for(setting)
    report = checker.check_query(query(":- gen(X), plus(X, X, Y)."))
    assert report.ok, [str(v) for v in report.violations]


def test_violation_objects_carry_structured_fields(setting):
    cset, predicate_types, modes = setting
    modes.declare("q", [OUT])
    modes.declare("p", [IN])
    checker = checker_for(setting)
    report = checker.check_query(query(":- q(X), p(X)."))
    assert not report.ok
    violation = report.violations[0]
    assert violation.kind == "flow"
    assert violation.position == 0
    assert violation.at_head is False
    assert str(violation.produced_type) != str(violation.consumer_type)
