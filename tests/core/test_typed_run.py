"""--typed-run's engine: per-resolvent subject reduction (Theorem 6)."""

from repro.checker import check_text
from repro.core.typed_run import TYPED_RUN_CODE, TypedRunner
from repro.workloads import APPEND

MODED = """\
TYPE nat, int.
FUNC 0, succ, pred.
int >= nat.
nat >= 0 + succ(nat).
int >= pred(int).
PRED produce(nat).
MODE produce(OUT).
produce(succ(0)).
PRED consume(int).
MODE consume(IN).
consume(X) :- nat2int(X, X).
PRED nat2int(nat, int).
MODE nat2int(IN, OUT).
nat2int(X, X).
:- produce(X), consume(X).
"""

#: makeint delivers a genuine int (pred(0)) into a nat-only consumer:
#: statically plausible under X : nat, dynamically a Theorem 6 violation.
ILL_MODED = """\
TYPE nat, int.
FUNC 0, pred.
int >= nat.
nat >= 0.
int >= pred(int).
PRED makeint(int).
MODE makeint(OUT).
makeint(pred(0)).
PRED usenat(nat).
MODE usenat(IN).
usenat(0).
:- makeint(X), usenat(X).
"""


def runner_for(text):
    module = check_text(text)
    checker = module.moded_checker or module.checker
    assert checker is not None
    return module, TypedRunner(checker, module.program)


def test_well_moded_query_holds_subject_reduction():
    module, runner = runner_for(MODED)
    result = runner.run(module.queries[0])
    assert result.ok and not result.aborted
    assert len(result.answers) == 1
    assert result.steps >= 2  # at least one resolvent per body goal


def test_ill_moded_query_aborts_at_the_first_bad_resolvent():
    module, runner = runner_for(ILL_MODED)
    result = runner.run(module.queries[0])
    assert result.aborted and not result.ok
    violation = result.violation
    assert violation.step == 1
    assert "usenat(pred(0))" in violation.render()
    assert "subject reduction violated at resolution step 1" in violation.render()


def test_abort_on_violation_false_records_but_keeps_running():
    module, runner = runner_for(ILL_MODED)
    result = runner.run(module.queries[0], abort_on_violation=False)
    assert result.violation is not None
    # Execution continued past the violation: the query simply fails.
    assert result.answers == []
    assert result.steps > result.violation.step or result.steps >= 1


def test_unmoded_program_uses_the_strict_checker():
    module = check_text(APPEND + ":- app(cons(nil,nil), nil, R).\n")
    assert module.moded_checker is None
    runner = TypedRunner(module.checker, module.program)
    result = runner.run(module.queries[0])
    assert result.ok and len(result.answers) == 1


def test_max_answers_stops_enumeration():
    module = check_text(APPEND + ":- app(X, Y, cons(nil,nil)).\n")
    runner = TypedRunner(module.checker, module.program)
    result = runner.run(module.queries[0], max_answers=1)
    assert result.ok and len(result.answers) == 1


def test_typed_run_code_is_reserved_outside_the_static_family():
    from repro.analysis import default_registry

    assert TYPED_RUN_CODE == "TLP590"
    assert all(rule.code != TYPED_RUN_CODE for rule in default_registry())
