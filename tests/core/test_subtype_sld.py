"""Tests for the naive, definitional subtype prover (Definition 3).

Positives are definitive (a found refutation is a refutation of H_C);
negatives are only definitive when the bounded tree is exhausted — the
asymmetry the deterministic strategy exists to fix.
"""

import pytest

from repro.core import NaiveSubtypeProver
from repro.lang import parse_term as T
from repro.workloads import ids_nonuniform, paper_universe


@pytest.fixture(scope="module")
def prover():
    return NaiveSubtypeProver(paper_universe())


def test_confirms_paper_derivation(prover):
    assert prover.holds(T("list(A)"), T("cons(foo,nil)")) is True


def test_confirms_declared_subtypes(prover):
    assert prover.holds(T("int"), T("nat")) is True
    assert prover.holds(T("int"), T("unnat")) is True
    assert prover.holds(T("list(A)"), T("elist")) is True


def test_confirms_memberships(prover):
    assert prover.contains(T("nat"), T("succ(0)")) is True
    assert prover.contains(T("elist"), T("nil")) is True
    assert prover.contains(T("unnat"), T("pred(0)")) is True


def test_more_general_paper_example(prover):
    assert prover.more_general(T("list(A)"), T("nelist(int)")) is True


def test_trivial_refutation_of_mismatched_constants():
    # Goals whose supertype is a bare function symbol DO exhaust quickly:
    # Theorem 1 says only the substitution axiom applies, and indexing
    # plus the variant check keep the tree finite enough.
    prover = NaiveSubtypeProver(paper_universe(), max_depth=8, step_limit=20_000)
    verdict = prover.holds(T("nil"), T("0"))
    assert verdict is not True  # False (exhausted) or None (budget)


def test_unknown_on_hard_negative():
    # nat >= pred(0) is false, but the naive prover cannot refute it:
    # transitivity gives an infinitely deep failing tree.
    prover = NaiveSubtypeProver(paper_universe(), max_depth=12, step_limit=5_000)
    assert prover.holds(T("nat"), T("pred(0)")) is not True


def test_handles_nonuniform_sets():
    # The definitional prover needs no restrictions at all.
    prover = NaiveSubtypeProver(ids_nonuniform())
    assert prover.holds(T("id(males)"), T("m(0)")) is True
    assert prover.holds(T("id(females)"), T("f(0)")) is True
    # The id(person) membership needs the extra person >= females hop
    # inside the substitution axiom; depth-first search may or may not
    # find it within budget — but it must never *refute* it.
    assert prover.holds(T("id(person)"), T("f(0)")) is not False


def test_frozen_constants_get_reflexivity():
    from repro.terms import freeze

    prover = NaiveSubtypeProver(paper_universe())
    frozen = freeze(T("A"))
    assert prover.holds(frozen, frozen) is True


def test_undeclared_compound_symbol_rejected(prover):
    from repro.terms import struct, atom

    with pytest.raises(ValueError):
        prover.holds(T("nat"), struct("mystery", atom("0")))


def test_iterative_variant_agrees_on_positives(prover):
    for sup, sub in [("nat", "succ(0)"), ("list(A)", "nil")]:
        assert prover.holds_iterative(T(sup), T(sub)) is True
