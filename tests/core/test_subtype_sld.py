"""Tests for the naive, definitional subtype prover (Definition 3).

Positives are definitive (a found refutation is a refutation of H_C);
negatives are only definitive when the bounded tree is exhausted — the
asymmetry the deterministic strategy exists to fix.
"""

import pytest

from repro.core import NaiveSubtypeProver, NaiveVerdict
from repro.lang import parse_term as T
from repro.workloads import ids_nonuniform, paper_universe


@pytest.fixture(scope="module")
def prover():
    return NaiveSubtypeProver(paper_universe())


def test_confirms_paper_derivation(prover):
    assert prover.holds(T("list(A)"), T("cons(foo,nil)")) is True


def test_confirms_declared_subtypes(prover):
    assert prover.holds(T("int"), T("nat")) is True
    assert prover.holds(T("int"), T("unnat")) is True
    assert prover.holds(T("list(A)"), T("elist")) is True


def test_confirms_memberships(prover):
    assert prover.contains(T("nat"), T("succ(0)")) is True
    assert prover.contains(T("elist"), T("nil")) is True
    assert prover.contains(T("unnat"), T("pred(0)")) is True


def test_more_general_paper_example(prover):
    assert prover.more_general(T("list(A)"), T("nelist(int)")) is True


def test_trivial_refutation_of_mismatched_constants():
    # Goals whose supertype is a bare function symbol DO exhaust quickly:
    # Theorem 1 says only the substitution axiom applies, and indexing
    # plus the variant check keep the tree finite enough.
    prover = NaiveSubtypeProver(paper_universe(), max_depth=8, step_limit=20_000)
    verdict = prover.holds(T("nil"), T("0"))
    assert verdict is not True  # False (exhausted) or None (budget)


def test_unknown_on_hard_negative():
    # nat >= pred(0) is false, but the naive prover cannot refute it:
    # transitivity gives an infinitely deep failing tree.
    prover = NaiveSubtypeProver(paper_universe(), max_depth=12, step_limit=5_000)
    assert prover.holds(T("nat"), T("pred(0)")) is not True


def test_handles_nonuniform_sets():
    # The definitional prover needs no restrictions at all.
    prover = NaiveSubtypeProver(ids_nonuniform())
    assert prover.holds(T("id(males)"), T("m(0)")) is True
    assert prover.holds(T("id(females)"), T("f(0)")) is True
    # The id(person) membership needs the extra person >= females hop
    # inside the substitution axiom; depth-first search may or may not
    # find it within budget — but it must never *refute* it.
    assert prover.holds(T("id(person)"), T("f(0)")) is not False


def test_frozen_constants_get_reflexivity():
    from repro.terms import freeze

    prover = NaiveSubtypeProver(paper_universe())
    frozen = freeze(T("A"))
    assert prover.holds(frozen, frozen) is True


def test_undeclared_compound_symbol_rejected(prover):
    from repro.terms import struct, atom

    with pytest.raises(ValueError):
        prover.holds(T("nat"), struct("mystery", atom("0")))


def test_iterative_variant_agrees_on_positives(prover):
    for sup, sub in [("nat", "succ(0)"), ("list(A)", "nil")]:
        assert prover.holds_iterative(T(sup), T(sub)) is True


# -- machine-readable exhaustion reasons --------------------------------------


def test_definitive_answers_carry_no_exhaustion(prover):
    verdict = prover.holds_detailed(T("nat"), T("succ(0)"))
    assert verdict == NaiveVerdict(True, None)
    assert not verdict.unknown
    assert prover.last_exhaustion is None


def test_depth_bound_exhaustion_reported():
    # A tiny depth bound with a huge step budget: every cut branch was a
    # depth cutoff, so the unknown is blamed on "depth".
    prover = NaiveSubtypeProver(paper_universe(), max_depth=4, step_limit=5_000_000)
    verdict = prover.holds_detailed(T("nat"), T("pred(0)"))
    assert verdict.verdict is None
    assert verdict.unknown
    assert verdict.exhaustion == "depth"
    assert prover.last_exhaustion == "depth"


def test_step_budget_exhaustion_reported():
    # A deep bound with a tiny step budget: the step counter aborts the
    # whole search first, so "steps" wins.
    prover = NaiveSubtypeProver(paper_universe(), max_depth=64, step_limit=50)
    verdict = prover.holds_detailed(T("nat"), T("pred(0)"))
    assert verdict.verdict is None
    assert verdict.exhaustion == "steps"
    assert prover.last_exhaustion == "steps"


def test_steps_wins_when_both_limits_are_tiny():
    prover = NaiveSubtypeProver(paper_universe(), max_depth=3, step_limit=5)
    verdict = prover.holds_detailed(T("nat"), T("pred(0)"))
    assert verdict.verdict is None
    assert verdict.exhaustion == "steps"


def test_last_exhaustion_resets_after_definitive_answer():
    prover = NaiveSubtypeProver(paper_universe(), max_depth=10, step_limit=4_000)
    assert prover.holds(T("nat"), T("pred(0)")) is None
    assert prover.last_exhaustion in ("depth", "steps")
    assert prover.holds(T("nat"), T("succ(0)")) is True
    assert prover.last_exhaustion is None


def test_holds_agrees_with_holds_detailed(prover):
    for sup, sub in [("nat", "succ(0)"), ("int", "nat"), ("elist", "nil")]:
        assert prover.holds(T(sup), T(sub)) == prover.holds_detailed(T(sup), T(sub)).verdict
