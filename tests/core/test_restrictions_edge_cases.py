"""Restriction edge cases the Section 3 replay misses: mutual recursion,
guardedness and uniformity varying independently, and empty types.

Guardedness and uniform polymorphism are orthogonal: each test pins one
corner of the 2×2.  The empty-type corpus exercises the inhabitation
analysis (`tlp-lint` TLP103) against the engine's own behaviour: an
uninhabited declared type is *legal* under Definitions 6–9 — the checker
accepts it — which is exactly why the linter exists.
"""

import pytest

from repro.analysis.constraints import inhabited_constructors
from repro.analysis.context import LintContext
from repro.core import (
    ConstraintSet,
    SubtypeEngine,
    SymbolTable,
    is_guarded,
    is_uniform_polymorphic,
    non_uniform_constraints,
    unguarded_constructors,
    validate_restrictions,
)
from repro.lang import parse_term as T
from repro.lang.parser import parse_file
from repro.workloads import constraint


def build(functions, types, texts):
    symbols = SymbolTable()
    for name, arity in functions:
        symbols.declare_function(name, arity)
    for name, arity in types:
        symbols.declare_type_constructor(name, arity)
    return ConstraintSet(symbols, [constraint(text) for text in texts])


# -- mutually recursive but guarded -------------------------------------------


def test_mutually_recursive_guarded_set_accepted():
    # even/odd recurse through each other, always under succ: guarded.
    cset = build(
        [("0", 0), ("succ", 1)],
        [("even", 0), ("odd", 0)],
        ["even >= 0", "even >= succ(odd)", "odd >= succ(even)"],
    )
    assert is_uniform_polymorphic(cset)
    assert is_guarded(cset)
    validate_restrictions(cset)  # must not raise
    engine = SubtypeEngine(cset)
    assert engine.holds(T("even"), T("succ(succ(0))"))
    assert not engine.holds(T("even"), T("succ(0)"))
    assert engine.holds(T("odd"), T("succ(0)"))


def test_three_way_mutual_recursion_guarded():
    cset = build(
        [("z", 0), ("s", 1)],
        [("a", 0), ("b", 0), ("c", 0)],
        ["a >= z", "a >= s(b)", "b >= s(c)", "c >= s(a)"],
    )
    assert is_guarded(cset)
    assert unguarded_constructors(cset) == []


def test_single_guarded_edge_breaks_the_cycle():
    # b >= c and c >= a are bare, but the only a -> b edge sits under s:
    # Definition 8's direct dependence never closes the cycle, so the set
    # is guarded even though two of its three hops are unguarded.
    cset = build(
        [("z", 0), ("s", 1)],
        [("a", 0), ("b", 0), ("c", 0)],
        ["a >= z", "a >= s(b)", "b >= c", "c >= a"],
    )
    assert is_guarded(cset)
    assert unguarded_constructors(cset) == []


def test_fully_bare_cycle_rejected():
    # With every hop bare, each constructor reaches itself: all three are
    # unguarded, and validate_restrictions refuses the set.
    cset = build(
        [("z", 0)],
        [("a", 0), ("b", 0), ("c", 0)],
        ["a >= z", "a >= b", "b >= c", "c >= a"],
    )
    assert not is_guarded(cset)
    assert set(unguarded_constructors(cset)) == {"a", "b", "c"}
    with pytest.raises(Exception):
        validate_restrictions(cset)


# -- guardedness and uniformity are independent --------------------------------


def test_guarded_but_not_uniform():
    # ids(X, X): repeated variable on the left — guarded, non-uniform.
    cset = build(
        [("a", 0)],
        [("ids", 2)],
        ["ids(X, X) >= a"],
    )
    assert is_guarded(cset)
    assert not is_uniform_polymorphic(cset)
    assert len(non_uniform_constraints(cset)) == 1


def test_uniform_but_not_guarded():
    # t >= t: distinct-variable condition holds trivially, guard doesn't.
    cset = build(
        [("a", 0)],
        [("t", 0)],
        ["t >= a", "t >= t"],
    )
    assert is_uniform_polymorphic(cset)
    assert not is_guarded(cset)
    assert unguarded_constructors(cset) == ["t"]


def test_non_variable_left_argument_is_non_uniform():
    cset = build(
        [("a", 0)],
        [("t", 1), ("u", 0)],
        ["t(u) >= a", "u >= a"],
    )
    assert not is_uniform_polymorphic(cset)
    assert is_guarded(cset)


# -- the empty-type corpus ----------------------------------------------------

EMPTY_NAT = """\
FUNC succ.
TYPE nat.
nat >= succ(nat).
PRED count(nat).
count(succ(N)) :- count(N).
"""


def test_empty_type_passes_both_restrictions():
    cset = build(
        [("succ", 1)],
        [("nat", 0)],
        ["nat >= succ(nat)"],
    )
    # Legal under Definitions 6-9 even though M[nat] is empty…
    assert is_uniform_polymorphic(cset)
    assert is_guarded(cset)
    validate_restrictions(cset)


def test_empty_type_has_no_ground_members():
    cset = build(
        [("succ", 1), ("zero", 0)],
        [("nat", 0)],
        ["nat >= succ(nat)"],
    )
    engine = SubtypeEngine(cset)
    # …but no ground term inhabits it: derivations never terminate in yes.
    assert not engine.holds(T("nat"), T("zero"))
    assert not engine.holds(T("nat"), T("succ(zero)"))
    assert not engine.holds(T("nat"), T("succ(succ(zero))"))


def test_inhabitation_analysis_flags_the_empty_type():
    ctx = LintContext.build(parse_file(EMPTY_NAT))
    assert inhabited_constructors(ctx) == set()


def test_inhabitation_analysis_accepts_base_case():
    text = EMPTY_NAT.replace("nat >= succ(nat).", "nat >= zero + succ(nat).")
    text = text.replace("FUNC succ.", "FUNC zero, succ.")
    ctx = LintContext.build(parse_file(text))
    assert inhabited_constructors(ctx) == {"nat"}
