"""Built-in constraint predicates of the typed-CLP extension
(``repro.core.builtins``): the surface syntax (`<`, ``=<``, ``=:=``,
``is``), the pretty-printer round trip, and the frontend's conditional
signature injection."""

import pytest

from repro.checker import check_text
from repro.core.builtins import (
    BUILTIN_MODES,
    BUILTIN_PREDICATES,
    builtin_heads,
    is_builtin_goal,
    is_builtin_indicator,
    numeric_type_name,
)
from repro.lang.parser import parse_file
from repro.terms import Struct, Var
from repro.terms.pretty import pretty

INT = Struct("int", ())
NAT = Struct("nat", ())
ZERO = Struct("0", ())

PRELUDE = """\
TYPE nat, int.
FUNC 0, s.
int >= nat.
nat >= 0 + s(nat).
"""


# -- surface syntax ----------------------------------------------------------


def test_infix_builtin_goals_parse_in_clause_bodies():
    source = parse_file(
        PRELUDE
        + "PRED p(int).\n"
        + "p(X) :- X < s(0), X =< s(0), X =:= 0, Y is X, p(Y).\n"
    )
    clause = source.items[-1]
    assert [goal.functor for goal in clause.body] == ["<", "=<", "=:=", "is", "p"]
    assert clause.body[0] == Struct("<", (Var("X"), Struct("s", (ZERO,))))
    assert clause.body[3] == Struct("is", (Var("Y"), Var("X")))


def test_infix_builtin_goals_parse_in_queries():
    source = parse_file(":- X is 0, X < s(0).")
    query = source.items[0]
    assert query.body == (
        Struct("is", (Var("X"), ZERO)),
        Struct("<", (Var("X"), Struct("s", (ZERO,)))),
    )


@pytest.mark.parametrize("functor", sorted(BUILTIN_PREDICATES))
def test_pretty_builtin_goals_reparse(functor):
    goal = Struct(functor, (Var("X"), Struct("s", (ZERO,))))
    rendered = pretty(goal)
    assert rendered == f"X {functor} s(0)"
    reparsed = parse_file(f":- {rendered}.").items[0].body[0]
    assert reparsed == goal


# -- the signature table -----------------------------------------------------


def test_builtin_indicators():
    assert all(is_builtin_indicator(name, 2) for name in ("<", "=<", "=:=", "is"))
    assert not is_builtin_indicator("<", 1)
    assert not is_builtin_indicator("app", 3)
    assert is_builtin_goal(Struct("is", (Var("X"), ZERO)))
    assert not is_builtin_goal(Struct("is", (Var("X"),)))


def test_numeric_type_prefers_int_over_nat():
    assert numeric_type_name(["nat", "int", "list"]) == "int"
    assert numeric_type_name(["nat", "list"]) == "nat"
    assert numeric_type_name(["list", "tree"]) is None


def test_builtin_heads_range_over_the_numeric_type():
    heads = builtin_heads(["nat", "int"])
    assert {head.functor for head in heads} == set(BUILTIN_PREDICATES)
    assert all(head.args == (INT, INT) for head in heads)
    assert builtin_heads(["list"]) == ()


# -- frontend injection ------------------------------------------------------


def test_signatures_injected_only_when_a_builtin_is_called():
    probe = Struct("is", (Var("X"), Var("Y")))
    used = check_text(PRELUDE + "PRED p(int).\np(X) :- Y is X, p(Y).\n")
    assert used.ok, used.diagnostics.render()
    assert used.predicate_types.has_type_for(probe)
    assert used.predicate_types.type_of(probe) == Struct("is", (INT, INT))
    unused = check_text(PRELUDE + "PRED p(int).\np(0).\n")
    assert unused.ok
    assert not unused.predicate_types.has_type_for(probe)


def test_signatures_use_nat_when_int_is_undeclared():
    module = check_text(
        "TYPE nat.\nFUNC 0, s.\nnat >= 0 + s(nat).\n"
        "PRED p(nat).\np(X) :- X < s(0).\n"
    )
    assert module.ok, module.diagnostics.render()
    probe = Struct("<", (Var("X"), Var("Y")))
    assert module.predicate_types.type_of(probe) == Struct("<", (NAT, NAT))


def test_user_declaration_wins_over_the_injected_signature():
    module = check_text(
        PRELUDE + "PRED is(nat, nat).\nPRED p(nat).\np(X) :- X is 0.\n"
    )
    probe = Struct("is", (Var("X"), Var("Y")))
    assert module.predicate_types.type_of(probe) == Struct("is", (NAT, NAT))


def test_builtin_modes_join_only_already_moded_programs():
    moded = check_text(
        PRELUDE
        + "PRED p(int).\nMODE p(IN).\np(X) :- Y is X, p(Y).\n"
    )
    assert moded.modes.modes_of(Struct("is", (Var("X"), Var("Y")))) == tuple(
        BUILTIN_MODES["is"]
    )
    unmoded = check_text(PRELUDE + "PRED p(int).\np(X) :- Y is X, p(Y).\n")
    assert len(unmoded.modes) == 0
