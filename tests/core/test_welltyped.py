"""Experiment E6: well-typedness (Definition 16) on the paper's examples.

Every accepted and rejected program/query from Sections 1, 5 and 6 is
replayed, plus structural tests of the checker's witnesses (η_i and the
final agreeing typings).
"""

import pytest

from repro.core import PredicateTypeEnv, WellTypedChecker
from repro.lang import parse_atom, parse_clause, parse_query
from repro.lp import Clause, Program, Query
from repro.terms import Var
from repro.lang import parse_term as T
from repro.workloads import paper_universe


@pytest.fixture()
def env():
    cset = paper_universe()
    predicate_types = PredicateTypeEnv(cset)
    for decl in [
        "app(list(A), list(A), list(A))",
        "p_int(int)",
        "q_list(list(A))",
        "q_listint(list(int))",
        "r_list(list(A))",
        "s_pair(int, list(A))",
        "p_nat(nat)",
        "q_int(int)",
        "member(A, list(A))",
        "len(list(A), nat)",
    ]:
        predicate_types.declare(parse_atom(decl))
    return cset, predicate_types


@pytest.fixture()
def checker(env):
    cset, predicate_types = env
    return WellTypedChecker(cset, predicate_types)


def clause(text):
    parsed = parse_clause(text)
    return Clause(parsed.head, parsed.body)


def query(text):
    return Query(parse_query(text).body)


# -- the paper's append program (Sections 1/5) ----------------------------------------


def test_append_clauses_well_typed(checker):
    assert checker.check_clause(clause("app(nil,L,L)."))
    report = checker.check_clause(clause("app(cons(X,L),M,cons(X,N)) :- app(L,M,N)."))
    assert report.well_typed
    # The witnesses: both atoms' typings agree on every shared variable.
    head_typing, body_typing = report.typings
    for var in head_typing.domain & body_typing.domain:
        assert head_typing[var] == body_typing[var]


def test_append_query_on_naturals_rejected(checker):
    # ":- app(nil,0,0)." — "this rules out certain successful queries".
    report = checker.check_query(query(":- app(nil, 0, 0)."))
    assert not report.well_typed
    assert "fail" in (report.reason or "")


def test_append_query_on_lists_accepted(checker):
    assert checker.check_query(query(":- app(cons(nil,nil), nil, X)."))
    assert checker.check_query(query(":- app(X, Y, cons(foo, nil))."))


# -- Section 5: variables in two type contexts ------------------------------------------


def test_query_two_contexts_rejected(checker):
    # ":- p(X), q(X)." with p : int, q : list(A).
    report = checker.check_query(query(":- p_int(X), q_list(X)."))
    assert not report.well_typed


def test_clause_body_context_clash_rejected(checker):
    # r(X) :- p(X).  with r : list(A), p : int.
    report = checker.check_clause(clause("r_list(X) :- p_int(X)."))
    assert not report.well_typed


def test_head_repeated_variable_clash_rejected(checker):
    # s(X, X). with s : (int, list(A)).
    report = checker.check_clause(clause("s_pair(X, X)."))
    assert not report.well_typed
    assert "⊥" in (report.reason or "")


# -- Section 5: defining clauses may not commit type variables ----------------------------


def test_head_cannot_commit_type_variable(checker):
    # p(cons(nil,nil)). with p : list(A) must be rejected.
    report = checker.check_clause(clause("q_list(cons(nil, nil))."))
    assert not report.well_typed


def test_body_may_commit_type_variable(checker):
    # ":- p(X), q(X)." with p : list(A), q : list(int) is acceptable
    # "since X may be assigned the type list(int)".
    report = checker.check_query(query(":- q_list(X), q_listint(X)."))
    assert report.well_typed
    # The commitment is recorded: q_list's renamed A was instantiated.
    eta = report.atom_checks[0].eta
    assert eta is not None
    committed = eta.apply(T("list(A)"))
    assert committed == T("list(int)")


def test_query_can_commit_to_ground_instance(checker):
    # A query may instantiate list(A) to a concrete element type.
    assert checker.check_query(query(":- q_list(cons(nil, nil))."))
    assert checker.check_query(query(":- q_list(cons(0, nil))."))


# -- Section 7: subtype information flow ---------------------------------------------------


def test_subtype_flow_query_rejected(checker):
    # ":- p(X), q(X)." with p : nat, q : int — must be rejected (the
    # declarations differ, name-based agreement fails).
    report = checker.check_query(query(":- p_nat(X), q_int(X)."))
    assert not report.well_typed


# -- structural behaviour -------------------------------------------------------------------


def test_fact_queries(checker):
    assert checker.check_query(query(":- p_int(0)."))
    assert checker.check_query(query(":- p_int(pred(0))."))
    report = checker.check_query(query(":- p_nat(pred(0))."))
    assert not report.well_typed


def test_member_clauses(checker):
    assert checker.check_clause(clause("member(X, cons(X, L))."))
    assert checker.check_clause(clause("member(X, cons(Y, L)) :- member(X, L)."))


def test_len_clauses(checker):
    assert checker.check_clause(clause("len(nil, 0)."))
    assert checker.check_clause(clause("len(cons(X, L), succ(N)) :- len(L, N)."))


def test_undeclared_predicate_rejected(checker):
    report = checker.check_clause(clause("mystery(X)."))
    assert not report.well_typed
    assert "no predicate type" in (report.reason or "")


def test_check_program_aggregates(checker):
    program = Program(
        [
            clause("app(nil,L,L)."),
            clause("app(cons(X,L),M,cons(X,N)) :- app(L,M,N)."),
            clause("q_list(cons(nil, nil))."),  # ill-typed
        ]
    )
    report = checker.check_program(program)
    assert not report.well_typed
    assert len(report.failures()) == 1


def test_report_records_final_typings(checker):
    report = checker.check_clause(clause("len(cons(X, L), succ(N)) :- len(L, N)."))
    assert report.well_typed
    head_typing = report.typings[0]
    assert head_typing[Var("X")] == T("A")
    assert head_typing[Var("L")] == T("list(A)")
    assert head_typing[Var("N")] == T("nat")


def test_two_body_atoms_share_committed_variable(checker):
    # Both body atoms commit their (independently renamed) type variables
    # to the same type through the shared variable X.
    report = checker.check_query(query(":- q_listint(X), q_list(X), p_int(Y)."))
    assert report.well_typed


def test_empty_query_is_well_typed(checker):
    assert checker.check_resolvent(())
