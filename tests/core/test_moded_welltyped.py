"""Tests for the [DH88]-style moded well-typedness system (Section 7
made concrete): strict Definition 16 with a directional fallback."""

import pytest

from repro.core import IN, OUT, ModeEnv, ModedWellTypedChecker, PredicateTypeEnv
from repro.lang import parse_atom, parse_clause, parse_query
from repro.lp import Clause, Query
from repro.workloads import paper_universe


@pytest.fixture()
def setting():
    cset = paper_universe()
    predicate_types = PredicateTypeEnv(cset)
    for decl in [
        "p(nat)",
        "q(int)",
        "nat2int(nat, int)",
        "app(list(A), list(A), list(A))",
        "sum_list(list(nat), nat)",
        "make_list(list(nat))",
    ]:
        predicate_types.declare(parse_atom(decl))
    modes = ModeEnv()
    return cset, predicate_types, modes


def checker_for(setting):
    return ModedWellTypedChecker(*setting)


def clause(text):
    parsed = parse_clause(text)
    return Clause(parsed.head, parsed.body)


def query(text):
    return Query(parse_query(text).body)


# -- the paper's motivating query -------------------------------------------------


def test_subtype_flow_accepted_with_modes(setting):
    cset, predicate_types, modes = setting
    modes.declare("p", [OUT])
    modes.declare("q", [IN])
    checker = checker_for(setting)
    report = checker.check_query(query(":- p(X), q(X)."))
    assert report.well_typed
    assert report.via == "directional"


def test_wrong_direction_rejected(setting):
    cset, predicate_types, modes = setting
    modes.declare("p", [IN])
    modes.declare("q", [OUT])
    checker = checker_for(setting)
    report = checker.check_query(query(":- q(X), p(X)."))
    assert not report.well_typed
    assert "does not flow" in (report.reason or "")


def test_unmoded_flow_still_rejected(setting):
    # Without mode declarations the strict verdict stands.
    checker = checker_for(setting)
    report = checker.check_query(query(":- p(X), q(X)."))
    assert not report.well_typed
    assert "no mode declaration" in (report.reason or "")


def test_consume_before_produce_rejected(setting):
    cset, predicate_types, modes = setting
    modes.declare("p", [OUT])
    modes.declare("q", [IN])
    checker = checker_for(setting)
    report = checker.check_query(query(":- q(X), p(X)."))
    assert not report.well_typed
    assert "before being produced" in (report.reason or "")


# -- the widening coercion the strict system cannot express -------------------------


def test_widening_clause_accepted(setting):
    cset, predicate_types, modes = setting
    modes.declare("nat2int", [IN, OUT])
    checker = checker_for(setting)
    report = checker.check_clause(clause("nat2int(X, X)."))
    assert report.well_typed
    assert report.via == "directional"
    # The strict system rejects the same clause.
    assert not report.strict_report.well_typed


def test_narrowing_clause_rejected(setting):
    # int2nat as a no-op must stay rejected: int does not flow into nat.
    cset, predicate_types, modes = setting
    predicate_types.declare(parse_atom("int2natx(int, nat)"))
    modes.declare("int2natx", [IN, OUT])
    checker = checker_for(setting)
    report = checker.check_clause(clause("int2natx(X, X)."))
    assert not report.well_typed


# -- strictly well-typed programs pass through unchanged ------------------------------


def test_strict_acceptance_short_circuits(setting):
    checker = checker_for(setting)
    report = checker.check_clause(clause("app(nil, L, L)."))
    assert report.well_typed
    assert report.via == "strict"


def test_append_recursive_clause_strict(setting):
    checker = checker_for(setting)
    report = checker.check_clause(
        clause("app(cons(X,L),M,cons(X,N)) :- app(L,M,N).")
    )
    assert report.well_typed
    assert report.via == "strict"


# -- commitments still solved in the directional path -----------------------------------


def test_directional_with_polymorphic_commitment(setting):
    cset, predicate_types, modes = setting
    modes.declare("make_list", [OUT])
    modes.declare("sum_list", [IN])
    # make_list produces a list(nat); sum_list consumes list(nat): ok.
    checker = checker_for(setting)
    report = checker.check_query(query(":- make_list(X), sum_list(X, N)."))
    assert report.well_typed


def test_check_program(setting):
    from repro.lp import Program

    cset, predicate_types, modes = setting
    modes.declare("nat2int", [IN, OUT])
    checker = checker_for(setting)
    program = Program([clause("nat2int(X, X)."), clause("app(nil, L, L).")])
    results = checker.check_program(program)
    assert all(report.well_typed for _, report in results)


# -- _solve_commitments directly ---------------------------------------------


def commitments(setting, equations=(), covers=(), rigid=()):
    from repro.lang import parse_term as T
    from repro.terms import Var

    checker = checker_for(setting)
    to_pairs = lambda pairs: [(Var(n), T(t)) for n, t in pairs]
    return checker._solve_commitments(
        to_pairs(equations), to_pairs(covers), {Var(n) for n in rigid}
    )


def test_solve_commitments_unifies_shape_equations(setting):
    from repro.lang import parse_term as T
    from repro.terms import Var

    solution = commitments(setting, equations=[("X", "nat")])
    assert solution is not None
    assert solution.apply(Var("X")) == T("nat")


def test_solve_commitments_conflicting_equations_fail(setting):
    assert commitments(setting, equations=[("X", "nat"), ("X", "int")]) is None


def test_solve_commitments_rejects_covers_on_rigid_variables(setting):
    # A rigid (head-committed) variable may not be re-inferred from
    # body cover constraints.
    assert commitments(setting, covers=[("X", "nat")], rigid=["X"]) is None


def test_solve_commitments_infers_a_common_cover_type(setting):
    from repro.terms import Var

    cset, _, _ = setting
    from repro.core import SubtypeEngine

    solution = commitments(setting, covers=[("X", "nat"), ("X", "int")])
    assert solution is not None
    committed = solution.apply(Var("X"))
    engine = SubtypeEngine(cset)
    from repro.lang import parse_term as T

    # The inferred commitment covers both demanded types.
    assert engine.more_general(committed, T("nat"))
    assert engine.more_general(committed, T("int"))


def test_solve_commitments_bound_cover_is_skipped(setting):
    # An equation binds X first; the cover on the now-bound variable is
    # checked by the flow conditions instead, so solving still succeeds.
    solution = commitments(
        setting, equations=[("X", "nat")], covers=[("X", "int")]
    )
    assert solution is not None
