"""Tests for the Horn theory H_C (Section 2)."""

from repro.core import SUBTYPE_PREDICATE, horn_program, subtype_goal
from repro.lp import Clause
from repro.terms import Var, atom, struct
from repro.workloads import naturals


def test_subtype_goal_shape():
    goal = subtype_goal(atom("int"), atom("nat"))
    assert goal.functor == SUBTYPE_PREDICATE
    assert goal.args == (atom("int"), atom("nat"))


def test_constraints_become_facts():
    program = horn_program(naturals())
    facts = [c for c in program if c.is_fact and not _is_reflexivity(c)]
    rendered = {str(c) for c in facts}
    # The three declared constraints plus the two predefined + constraints.
    assert any("nat" in t and "succ" in t for t in rendered)
    assert sum(1 for c in program if c.is_fact) >= 5


def _is_reflexivity(clause: Clause) -> bool:
    head = clause.head
    return head.functor == SUBTYPE_PREDICATE and head.args[0] == head.args[1]


def test_substitution_axioms_for_every_symbol():
    cset = naturals()
    program = horn_program(cset)
    heads = [c.head for c in program]
    # 0-ary symbols get reflexivity facts.
    assert subtype_goal(atom("0"), atom("0")) in heads
    assert subtype_goal(atom("nat"), atom("nat")) in heads
    # n-ary symbols get componentwise rules.
    succ_axioms = [
        c
        for c in program
        if not c.is_fact
        and c.head.args[0] == struct("succ", Var("A0"))
    ]
    assert len(succ_axioms) == 1
    assert len(succ_axioms[0].body) == 1


def test_substitution_axiom_arity_matches_body_length():
    cset = naturals()
    program = horn_program(cset)
    for clause in program:
        left, right = clause.head.args
        if clause.is_fact or isinstance(left, Var) or isinstance(right, Var):
            continue
        if left.indicator == right.indicator and all(
            isinstance(a, Var) for a in left.args + right.args
        ):
            assert len(clause.body) == len(left.args)


def test_transitivity_axiom_present():
    program = horn_program(naturals())
    transitivity = [
        c
        for c in program
        if len(c.body) == 2 and isinstance(c.head.args[0], Var)
    ]
    assert len(transitivity) == 1


def test_extra_constants_get_reflexivity():
    program = horn_program(naturals(), extra_constants=["'$frozen0"])
    frozen = atom("'$frozen0")
    assert subtype_goal(frozen, frozen) in [c.head for c in program]


def test_program_size_scales_with_alphabet():
    cset = naturals()
    base = len(horn_program(cset))
    extended = len(horn_program(cset, extra_constants=["k1", "k2"]))
    assert extended == base + 2
