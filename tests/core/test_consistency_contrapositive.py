"""The contrapositive of Theorem 6: running *ill-typed* programs (with
the guard rails bypassed) must produce observable consistency violations.

Every other Theorem 6 test asserts zero violations on well-typed
programs; these tests prove the detector actually detects — the paper's
own failure scenarios (Section 5's ill-typed resolvents, Section 7's
wrong-direction flow) materialise as recorded violations.
"""

import pytest

from repro.core import PredicateTypeEnv, TypedInterpreter, WellTypedChecker
from repro.lang import parse_atom, parse_clause, parse_query
from repro.lp import Clause, Program, Query
from repro.workloads import paper_universe


def clause(text):
    parsed = parse_clause(text)
    return Clause(parsed.head, parsed.body)


def query(text):
    return Query(parse_query(text).body)


@pytest.fixture()
def environment():
    cset = paper_universe()
    env = PredicateTypeEnv(cset)
    for decl in ["p(list(A))", "q(list(int))", "r(int)", "app(list(A),list(A),list(A))"]:
        env.declare(parse_atom(decl))
    checker = WellTypedChecker(cset, env)
    return cset, env, checker


def run_unchecked(checker, clauses, query_text):
    """Execute bypassing the program/query admission checks (the guard
    rails Theorem 6 relies on) but keeping the resolvent re-checking."""
    interpreter = TypedInterpreter(checker, Program(clauses), check_program=False)
    return interpreter.run(query(query_text), check_query=False)


def test_section5_commitment_leak_is_detected(environment):
    # The paper: p(cons(nil,nil)). "would allow the above query to lead
    # to the ill-typed resolvent :- q(cons(nil,nil))."  Run exactly that.
    _, _, checker = environment
    result = run_unchecked(
        checker,
        [clause("p(cons(nil, nil)).") , clause("q(nil).")],
        ":- p(X), q(X).",
    )
    assert result.violations, "the ill-typed resolvent must be caught"
    goals, reason = result.violations[0]
    assert any(goal.functor == "q" for goal in goals)


def test_two_context_query_produces_violation_or_bad_answer(environment):
    # :- p(X), r(X). with p : list(A), r : int — executing it (bypassing
    # the query check) instantiates X at one of the two incompatible
    # types; the run must not look consistent.
    _, _, checker = environment
    result = run_unchecked(
        checker,
        [clause("p(nil)."), clause("r(0).")],
        ":- p(X), r(X).",
    )
    # p binds X := nil, leaving the ill-typed resolvent :- r(nil).
    assert not result.consistent


def test_type_incorrect_clause_pollutes_answers(environment):
    # A corrupted append whose base case emits a non-list third argument.
    _, _, checker = environment
    result = run_unchecked(
        checker,
        [
            clause("app(nil, L, 0)."),
            clause("app(cons(X,L), M, cons(X,N)) :- app(L, M, N)."),
        ],
        ":- app(cons(nil,nil), nil, R).",
    )
    assert result.answers, "execution itself still succeeds"
    # The answer R = cons(nil, 0) is not a list: the answer check flags it.
    assert result.answer_violations


def test_well_typed_control_group(environment):
    # Same harness, correct program: zero violations (the detector is
    # quiet exactly when Theorem 6 says it must be).
    _, _, checker = environment
    result = run_unchecked(
        checker,
        [
            clause("app(nil, L, L)."),
            clause("app(cons(X,L), M, cons(X,N)) :- app(L, M, N)."),
        ],
        ":- app(cons(nil,nil), nil, R).",
    )
    assert result.consistent
    assert result.answers
