"""Experiment E7: Theorem 6 (consistency) made observable.

Executes well-typed programs while re-checking every resolvent's
well-typedness; Theorem 6 says violations are impossible, and the
corollary says every computed answer substitution is type consistent.
"""

import pytest

from repro.core import TypedExecutionError, TypedInterpreter
from repro.lang import parse_query
from repro.lp import Clause, Program, Query
from repro.terms import Var, pretty
from repro.workloads import load


def query(text):
    return Query(parse_query(text).body)


@pytest.fixture(scope="module")
def append_module():
    return load("append")


@pytest.fixture(scope="module")
def list_module():
    return load("list_library")


@pytest.fixture(scope="module")
def arithmetic_module():
    return load("naturals_arithmetic")


def interpreter(module):
    return TypedInterpreter(module.checker, module.program, check_program=False)


# -- Theorem 6 on the paper's append ------------------------------------------------


def test_append_execution_consistent(append_module):
    result = interpreter(append_module).run(
        query(":- app(cons(nil, nil), cons(nil, nil), R).")
    )
    assert len(result.answers) == 1
    assert result.resolvents_checked >= 2
    assert result.consistent, result.violations


def test_append_backwards_consistent(append_module):
    result = interpreter(append_module).run(
        query(":- app(X, Y, cons(nil, cons(nil, nil)))."),
    )
    assert len(result.answers) == 3
    assert result.consistent


def test_deep_append_consistent(append_module):
    from repro.terms import Struct

    # Build a longer list over the list-only universe (elements nil).
    def nil_list(n):
        term = Struct("nil", ())
        for _ in range(n):
            term = Struct("cons", (Struct("nil", ()), term))
        return term

    result = interpreter(append_module).run(
        Query((Struct("app", (nil_list(15), nil_list(5), Var("R"))),))
    )
    assert len(result.answers) == 1
    assert result.resolvents_checked >= 16
    assert result.consistent


# -- arithmetic workloads -----------------------------------------------------------------


def test_plus_consistent(arithmetic_module):
    result = interpreter(arithmetic_module).run(
        query(":- plus(succ(succ(0)), succ(0), R).")
    )
    assert len(result.answers) == 1
    assert pretty(result.answers[0].apply(Var("R"))) == "succ(succ(succ(0)))"
    assert result.consistent


def test_times_consistent(arithmetic_module):
    result = interpreter(arithmetic_module).run(
        query(":- times(succ(succ(0)), succ(succ(0)), R).")
    )
    assert pretty(result.answers[0].apply(Var("R"))) == "succ(succ(succ(succ(0))))"
    assert result.consistent


def test_nondeterministic_le_consistent(arithmetic_module):
    result = interpreter(arithmetic_module).run(
        query(":- le(N, succ(succ(0)))."), max_answers=3
    )
    assert len(result.answers) == 3
    assert result.consistent


def test_int2nat_filters(arithmetic_module):
    runner = interpreter(arithmetic_module)
    accepted = runner.run(query(":- int2nat(succ(0), Y)."))
    assert len(accepted.answers) == 1
    rejected = runner.run(query(":- int2nat(pred(0), Y)."))
    assert rejected.answers == []
    assert accepted.consistent and rejected.consistent


# -- the list library ------------------------------------------------------------------------


def test_list_library_queries_consistent(list_module):
    runner = interpreter(list_module)
    cases = [
        ":- len(cons(0, cons(0, nil)), N).",
        ":- reverse(cons(0, cons(succ(0), nil)), R).",
        ":- member(X, cons(0, cons(succ(0), nil))).",
        ":- sum(cons(succ(0), cons(succ(0), nil)), N).",
        ":- last(cons(0, cons(succ(0), nil)), X).",
    ]
    for text in cases:
        result = runner.run(query(text))
        assert result.answers, text
        assert result.consistent, (text, result.violations)


def test_answers_are_type_consistent(list_module):
    # The corollary of Theorem 6: instantiate the query with each answer
    # and re-check.
    result = interpreter(list_module).run(query(":- member(X, cons(0, cons(succ(0), nil)))."))
    assert result.answers_checked == len(result.answers) >= 2
    assert not result.answer_violations


# -- guard rails ------------------------------------------------------------------------------


def test_ill_typed_query_refused(append_module):
    with pytest.raises(TypedExecutionError):
        interpreter(append_module).run(query(":- app(nil, 0, 0)."))


def test_ill_typed_program_refused(append_module):
    from repro.lang import parse_clause

    bad = parse_clause("app(cons(nil,nil), L, L).")
    program = Program(list(append_module.program) + [Clause(bad.head, bad.body)])
    with pytest.raises(TypedExecutionError):
        TypedInterpreter(append_module.checker, program, check_program=True)


def test_checks_can_be_disabled_for_benchmarks(append_module):
    result = interpreter(append_module).run(
        query(":- app(cons(nil, nil), nil, R)."),
        check_resolvents=False,
        check_answers=False,
    )
    assert result.resolvents_checked == 0
    assert result.answers_checked == 0
    assert len(result.answers) == 1
