"""Definitions 10–12: typings, respectfulness, generality, agreement.

The Section 4 examples are replayed verbatim.
"""

import pytest

from repro.core import (
    SubtypeEngine,
    in_agreement,
    is_respectful_typing,
    is_typing,
    merge_typings,
    more_general_typing,
)
from repro.lang import parse_term as T
from repro.terms import Substitution, Var
from repro.workloads import paper_universe


@pytest.fixture(scope="module")
def engine():
    return SubtypeEngine(paper_universe())


def typing(**bindings):
    return Substitution({Var(name): T(text) for name, text in bindings.items()})


# -- Definition 10: the paper's example list -------------------------------------


def test_typings_for_x_under_list_a(engine):
    # "the following substitutions are typings for X under list(A):
    #  {X ↦ list(A)}, {X ↦ nelist(A)}, {X ↦ list(int)}, and {X ↦ list(B)}."
    for candidate in [
        typing(X="list(A)"),
        typing(X="nelist(A)"),
        typing(X="list(int)"),
        typing(X="list(B)"),
    ]:
        assert is_typing(engine, T("list(A)"), Var("X"), candidate), candidate


def test_only_first_two_are_respectful(engine):
    # "Of these, only the first and second are respectful."
    assert is_respectful_typing(engine, T("list(A)"), Var("X"), typing(X="list(A)"))
    assert is_respectful_typing(engine, T("list(A)"), Var("X"), typing(X="nelist(A)"))
    assert not is_respectful_typing(engine, T("list(A)"), Var("X"), typing(X="list(int)"))
    assert not is_respectful_typing(engine, T("list(A)"), Var("X"), typing(X="list(B)"))


def test_every_substitution_types_fx_under_variable(engine):
    # "every substitution over {X} is a typing for f(X) under A, but none
    # is respectful" (with cons playing the role of f).
    term = T("cons(X, nil)")
    for candidate in [typing(X="nat"), typing(X="list(B)"), typing(X="A")]:
        assert is_typing(engine, T("A"), term, candidate)
        assert not is_respectful_typing(engine, T("A"), term, candidate)


def test_partial_substitution_is_not_a_typing(engine):
    term = T("cons(X, Y)")
    assert not is_typing(engine, T("list(A)"), term, typing(X="A"))


def test_non_member_is_not_a_typing(engine):
    assert not is_typing(engine, T("nat"), Var("X"), typing(X="list(A)"))


# -- Definition 11: more general typings ---------------------------------------------


def test_more_general_typing_paper_example(engine):
    # "{X ↦ list(A)} is a more general typing for X than either
    #  {X ↦ nelist(A)} or {X ↦ list(int)}."
    general = typing(X="list(A)")
    assert more_general_typing(engine, general, typing(X="nelist(A)"), Var("X"))
    assert more_general_typing(engine, general, typing(X="list(int)"), Var("X"))
    assert not more_general_typing(engine, typing(X="nelist(A)"), general, Var("X"))


def test_more_general_typing_componentwise(engine):
    term = T("cons(X, Y)")
    general = typing(X="A", Y="list(A)")
    specific = typing(X="int", Y="list(int)")
    assert more_general_typing(engine, general, specific, term)
    assert not more_general_typing(engine, specific, general, term)


def test_more_general_typing_is_reflexive(engine):
    candidate = typing(X="list(A)", Y="nat")
    assert more_general_typing(engine, candidate, candidate, T("cons(X, Y)"))


# -- Definition 12: agreement ---------------------------------------------------------


def test_agreement_requires_syntactic_equality():
    assert in_agreement([typing(X="list(A)"), typing(X="list(A)")])
    # Name-based: list(A) and list(B) do NOT agree even though equivalent.
    assert not in_agreement([typing(X="list(A)"), typing(X="list(B)")])


def test_agreement_on_disjoint_domains():
    assert in_agreement([typing(X="int"), typing(Y="list(A)")])


def test_agreement_is_pairwise():
    assert not in_agreement(
        [typing(X="int"), typing(Y="nat"), typing(X="nat", Y="nat")]
    )


def test_empty_set_agrees():
    assert in_agreement([])
    assert in_agreement([typing(X="int")])


def test_merge_typings():
    merged = merge_typings([typing(X="int"), typing(Y="list(A)")])
    assert merged[Var("X")] == T("int")
    assert merged[Var("Y")] == T("list(A)")


def test_merge_typings_rejects_clash():
    with pytest.raises(ValueError):
        merge_typings([typing(X="int"), typing(X="nat")])
