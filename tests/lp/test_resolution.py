"""SLD engine tests: answers, order, bounds, tracing, variant pruning."""

import pytest

from repro.lang import parse_clause, parse_query
from repro.lp import Clause, Database, SLDEngine, solve, solve_iterative_deepening
from repro.terms import Var, atom, pretty, struct


def clauses(*texts):
    return [Clause(c.head, c.body) for c in map(parse_clause, texts)]


def goals(text):
    return parse_query(text).body


APPEND = clauses(
    "app(nil,L,L).",
    "app(cons(X,L),M,cons(X,N)) :- app(L,M,N).",
)


def nat_list(*names):
    term = atom("nil")
    for name in reversed(names):
        term = struct("cons", atom(name), term)
    return term


def test_ground_success():
    db = Database(APPEND)
    result = solve(db, goals(":- app(nil, nil, nil)."))
    assert len(result.answers) == 1
    assert result.complete


def test_ground_failure():
    db = Database(APPEND)
    result = solve(db, goals(":- app(nil, nil, cons(a, nil))."))
    assert result.answers == []
    assert result.complete


def test_computes_append():
    db = Database(APPEND)
    result = solve(db, goals(":- app(cons(a,nil), cons(b,nil), R)."))
    assert len(result.answers) == 1
    answer = result.answers[0]
    assert answer.apply(Var("R")) == nat_list("a", "b")


def test_backwards_append_enumerates_splits():
    db = Database(APPEND)
    result = solve(db, goals(":- app(X, Y, cons(a, cons(b, nil)))."))
    assert len(result.answers) == 3
    splits = {
        (pretty(a.apply(Var("X"))), pretty(a.apply(Var("Y")))) for a in result.answers
    }
    assert ("nil", "cons(a, cons(b, nil))") in splits
    assert ("cons(a, cons(b, nil))", "nil") in splits


def test_empty_goal_list_succeeds_once():
    db = Database(APPEND)
    result = solve(db, [])
    assert len(result.answers) == 1


def test_answers_restricted_to_query_variables():
    db = Database(APPEND)
    result = solve(db, goals(":- app(cons(a,nil), nil, R)."))
    answer = result.answers[0]
    assert set(answer) <= {Var("R")}


def test_conjunction_shares_bindings():
    db = Database(
        APPEND
        + clauses("eq(X,X).")
    )
    result = solve(db, goals(":- app(X, nil, cons(a,nil)), eq(X, cons(a,nil))."))
    assert len(result.answers) == 1


def test_depth_limit_prunes():
    db = Database(APPEND)
    result = solve(db, goals(":- app(cons(a,cons(b,cons(c,nil))), nil, R)."), depth_limit=2)
    assert result.answers == []
    assert result.hit_depth_limit


def test_step_limit():
    loops = clauses("loop :- loop.")
    db = Database(loops)
    result = solve(db, goals(":- loop."), step_limit=100)
    assert result.answers == []
    assert result.hit_step_limit


def test_infinite_left_recursion_bounded():
    db = Database(clauses("p(X) :- p(X).", "p(a)."))
    result = solve(db, goals(":- p(a)."), depth_limit=50, max_answers=1)
    # Depth-first dives into the loop; the bound turns it into cutoffs and
    # the fact is still found on backtracking.
    assert len(result.answers) == 1


def test_variant_check_prunes_left_recursion():
    db = Database(clauses("p(X) :- p(X).", "p(a)."))
    engine = SLDEngine(db, variant_check=True)
    answers = list(engine.solve(goals(":- p(a).")))
    assert len(answers) == 1  # terminates without any depth bound
    assert engine.stats.variant_prunes > 0


def test_variant_check_preserves_existence():
    db = Database(APPEND)
    plain = solve(db, goals(":- app(cons(a,nil), cons(b,nil), R)."))
    pruned = solve(db, goals(":- app(cons(a,nil), cons(b,nil), R)."), variant_check=True)
    assert bool(plain.answers) == bool(pruned.answers)
    assert plain.answers[0].apply(Var("R")) == pruned.answers[0].apply(Var("R"))


def test_on_resolvent_sees_every_resolvent():
    db = Database(APPEND)
    seen = []
    engine = SLDEngine(db, on_resolvent=seen.append)
    list(engine.solve(goals(":- app(cons(a,nil), nil, R).")))
    # Two resolution steps: recursive clause then base clause, plus the
    # final empty resolvent.
    assert () in seen
    assert any(g and g[0].functor == "app" for g in seen)


def test_stats_counters():
    db = Database(APPEND)
    engine = SLDEngine(db)
    list(engine.solve(goals(":- app(cons(a,nil), nil, R).")))
    assert engine.stats.steps >= 2
    assert engine.stats.unification_attempts >= engine.stats.steps
    assert engine.stats.max_depth_reached >= 2


def test_iterative_deepening_finds_deep_answers():
    db = Database(APPEND)
    deep = nat_list(*[f"x{i}" for i in range(10)])
    result = solve_iterative_deepening(
        db, [struct("app", deep, atom("nil"), Var("R"))], max_depth=32
    )
    assert len(result.answers) == 1
    assert result.complete


def test_iterative_deepening_deduplicates_across_rounds():
    db = Database(APPEND)
    result = solve_iterative_deepening(
        db,
        [struct("app", Var("X"), Var("Y"), nat_list("a", "b"))],
        max_depth=16,
    )
    assert len(result.answers) == 3


def test_iterative_deepening_reports_incomplete():
    db = Database(clauses("grow(X) :- grow(f(X))."))
    result = solve_iterative_deepening(db, goals(":- grow(a)."), max_depth=8)
    assert result.answers == []
    assert not result.complete


def test_occurs_check_toggle():
    db = Database(clauses("eq(X,X)."))
    engine_safe = SLDEngine(db, occurs_check=True)
    assert not list(engine_safe.solve(goals(":- eq(X, f(X))."), depth_limit=4))
    engine_fast = SLDEngine(db, occurs_check=False)
    assert list(engine_fast.solve(goals(":- eq(X, f(X))."), depth_limit=4))
