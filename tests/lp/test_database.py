"""Tests for the clause database and first-argument indexing."""

from repro.lp import Clause, Database, Program
from repro.terms import Var, atom, struct


def _program():
    return [
        Clause(struct("app", atom("nil"), Var("L"), Var("L"))),
        Clause(
            struct("app", struct("cons", Var("X"), Var("L")), Var("M"), struct("cons", Var("X"), Var("N"))),
            (struct("app", Var("L"), Var("M"), Var("N")),),
        ),
        Clause(struct("p", atom("a"))),
    ]


def test_len_and_predicates():
    db = Database(_program())
    assert len(db) == 3
    assert set(db.predicates()) == {("app", 3), ("p", 1)}


def test_clauses_for_in_program_order():
    db = Database(_program())
    clauses = db.clauses_for(("app", 3))
    assert len(clauses) == 2
    assert clauses[0].is_fact


def test_candidates_unknown_predicate():
    db = Database(_program())
    assert db.candidates(struct("unknown", Var("X"))) == []


def test_candidates_variable_first_arg_sees_all():
    db = Database(_program())
    goal = struct("app", Var("A"), Var("B"), Var("C"))
    assert len(db.candidates(goal)) == 2


def test_indexing_filters_by_first_arg():
    db = Database(_program(), first_arg_indexing=True)
    nil_goal = struct("app", atom("nil"), Var("B"), Var("C"))
    cons_goal = struct("app", struct("cons", atom("a"), atom("nil")), Var("B"), Var("C"))
    assert [c.is_fact for c in db.candidates(nil_goal)] == [True]
    assert [c.is_fact for c in db.candidates(cons_goal)] == [False]


def test_indexing_disabled_sees_all():
    db = Database(_program(), first_arg_indexing=False)
    nil_goal = struct("app", atom("nil"), Var("B"), Var("C"))
    assert len(db.candidates(nil_goal)) == 2


def test_indexing_merges_variable_headed_clauses_in_order():
    clauses = [
        Clause(struct("q", atom("a"), atom("first"))),
        Clause(struct("q", Var("X"), atom("second"))),
        Clause(struct("q", atom("a"), atom("third"))),
    ]
    db = Database(clauses, first_arg_indexing=True)
    goal = struct("q", atom("a"), Var("R"))
    ordered = [c.head.args[1].functor for c in db.candidates(goal)]
    assert ordered == ["first", "second", "third"]


def test_indexing_is_complete_overapproximation():
    # Indexed candidates must include every clause that actually unifies.
    from repro.terms.unify import unifiable

    clauses = _program()
    db_indexed = Database(clauses, first_arg_indexing=True)
    db_plain = Database(clauses, first_arg_indexing=False)
    for goal in [
        struct("app", atom("nil"), atom("nil"), Var("C")),
        struct("app", struct("cons", atom("a"), atom("nil")), Var("B"), Var("C")),
        struct("app", Var("A"), Var("B"), Var("C")),
    ]:
        indexed = set(map(id, db_indexed.candidates(goal)))
        for clause in db_plain.candidates(goal):
            from repro.lp.clause import rename_clause_apart

            if unifiable(goal, rename_clause_apart(clause).head):
                assert id(clause) in indexed


def test_from_program():
    program = Program(_program())
    db = Database.from_program(program)
    assert len(db) == 3
