"""Differential test: the production SLD engine vs a tiny, obviously
correct reference meta-interpreter.

The reference is a direct recursive transcription of SLD-resolution with
eager substitution composition — slow but transparently faithful to
[Apt88].  Answer *sets* (canonicalised) must coincide with the engine's
on every sampled program/query pair.
"""

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.lang import parse_clause, parse_query
from repro.lp import Clause, Database, rename_clause_apart, solve
from repro.terms import (
    Struct,
    Substitution,
    Term,
    Var,
    pretty,
    unify,
    variables_of,
)


def reference_solve(
    clauses: List[Clause],
    goals: Tuple[Struct, ...],
    depth_limit: int,
) -> Optional[List[Substitution]]:
    """All answers up to ``depth_limit`` steps, or ``None`` if the bound
    was hit (the comparison is then skipped)."""
    query_vars = set()
    for goal in goals:
        query_vars |= variables_of(goal)
    answers: List[Substitution] = []
    complete = True

    def search(current: Tuple[Struct, ...], subst: Substitution, depth: int) -> None:
        nonlocal complete
        if not current:
            answers.append(subst.restrict(query_vars))
            return
        if depth >= depth_limit:
            complete = False
            return
        selected, rest = current[0], current[1:]
        for clause in clauses:
            renamed = rename_clause_apart(clause)
            theta = unify(selected, renamed.head)
            if theta is None:
                continue
            new_goals = tuple(theta.apply(g) for g in renamed.body + rest)
            search(new_goals, subst.compose(theta), depth + 1)

    search(goals, Substitution(), 0)
    return answers if complete else None


def canonical_answers(answers) -> List[Tuple[str, ...]]:
    rendered = []
    for answer in answers:
        rendered.append(
            tuple(
                f"{var.name}={pretty(answer.apply(var))}"
                for var in sorted(answer.domain, key=lambda v: v.name)
            )
        )
    return sorted(rendered)


def clauses_of(*texts) -> List[Clause]:
    return [Clause(c.head, c.body) for c in map(parse_clause, texts)]


PROGRAMS = {
    "append": clauses_of(
        "app(nil,L,L).",
        "app(cons(X,L),M,cons(X,N)) :- app(L,M,N).",
    ),
    "member": clauses_of(
        "member(X,cons(X,L)).",
        "member(X,cons(Y,L)) :- member(X,L).",
    ),
    "graph": clauses_of(
        "edge(a,b).",
        "edge(b,c).",
        "edge(a,c).",
        "path(X,Y) :- edge(X,Y).",
        "path(X,Z) :- edge(X,Y), path(Y,Z).",
    ),
    "plus": clauses_of(
        "plus(z,N,N).",
        "plus(s(M),N,s(K)) :- plus(M,N,K).",
    ),
}

QUERIES = {
    "append": [
        ":- app(cons(a,nil), cons(b,nil), R).",
        ":- app(X, Y, cons(a, cons(b, cons(c, nil)))).",
        ":- app(X, X, cons(a, cons(a, nil))).",
        ":- app(nil, nil, cons(a, nil)).",
    ],
    "member": [
        ":- member(X, cons(a, cons(b, cons(a, nil)))).",
        ":- member(b, cons(a, cons(b, nil))).",
        ":- member(c, cons(a, cons(b, nil))).",
    ],
    "graph": [
        ":- path(a, X).",
        ":- path(b, a).",
        ":- path(X, c).",
    ],
    "plus": [
        ":- plus(s(s(z)), s(z), R).",
        ":- plus(X, Y, s(s(z))).",
    ],
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_engine_matches_reference(name):
    clauses = PROGRAMS[name]
    database = Database(clauses)
    for text in QUERIES[name]:
        goals = parse_query(text).body
        expected = reference_solve(clauses, goals, depth_limit=12)
        if expected is None:
            continue
        result = solve(database, goals, depth_limit=12)
        assert canonical_answers(result.answers) == canonical_answers(expected), text


@pytest.mark.parametrize("indexing", [True, False])
def test_indexing_answer_sets_identical(indexing):
    clauses = PROGRAMS["append"]
    database = Database(clauses, first_arg_indexing=indexing)
    goals = parse_query(":- app(X, Y, cons(a, cons(b, nil))).").body
    result = solve(database, goals)
    assert len(result.answers) == 3


def test_reference_detects_depth_exhaustion():
    clauses = clauses_of("loop :- loop.")
    goals = parse_query(":- loop.").body
    assert reference_solve(clauses, goals, depth_limit=6) is None
