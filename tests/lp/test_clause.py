"""Tests for clauses, programs and standardising apart."""

from repro.lp import Clause, Program, Query, rename_clause_apart
from repro.terms import Var, atom, struct, variables_of


def test_fact_detection():
    fact = Clause(struct("p", atom("a")))
    rule = Clause(struct("p", Var("X")), (struct("q", Var("X")),))
    assert fact.is_fact
    assert not rule.is_fact


def test_indicator():
    clause = Clause(struct("app", atom("nil"), Var("L"), Var("L")))
    assert clause.indicator == ("app", 3)


def test_clause_variables():
    clause = Clause(struct("p", Var("X")), (struct("q", Var("X"), Var("Y")),))
    assert clause.variables() == {Var("X"), Var("Y")}


def test_clause_atoms():
    head = struct("p", Var("X"))
    body = (struct("q", Var("X")),)
    assert Clause(head, body).atoms() == (head,) + body


def test_clause_str():
    clause = Clause(struct("p", Var("X")), (struct("q", Var("X")),))
    assert str(clause) == "p(X) :- q(X)."
    assert str(Clause(struct("p", atom("a")))) == "p(a)."


def test_query_str_and_variables():
    query = Query((struct("p", Var("X")), struct("q", Var("Y"))))
    assert str(query) == ":- p(X), q(Y)."
    assert query.variables() == {Var("X"), Var("Y")}


def test_program_collects_predicates():
    program = Program(
        [
            Clause(struct("p", atom("a"))),
            Clause(struct("q", Var("X")), (struct("p", Var("X")),)),
        ]
    )
    assert program.predicates() == {("p", 1), ("q", 1)}
    assert len(program) == 2


def test_rename_apart_fresh_and_consistent():
    clause = Clause(
        struct("app", struct("cons", Var("X"), Var("L")), Var("M"), struct("cons", Var("X"), Var("N"))),
        (struct("app", Var("L"), Var("M"), Var("N")),),
    )
    renamed = rename_clause_apart(clause)
    # No variable survives.
    assert renamed.variables().isdisjoint(clause.variables())
    # Sharing is preserved: X in the head appears twice as the same new var.
    head = renamed.head
    assert head.args[0].args[0] == head.args[2].args[0]
    # Body and head share L, M, N consistently.
    assert renamed.body[0].args[0] == head.args[0].args[1]


def test_rename_apart_twice_differs():
    clause = Clause(struct("p", Var("X")))
    first = rename_clause_apart(clause)
    second = rename_clause_apart(clause)
    assert first.variables().isdisjoint(second.variables())
