"""Typed-unification constraints (Section 7's third alternative).

The paper: ":- p(X), X:nat, q(X)" — allow sub→super flow while a runtime
constraint store prevents the unsound direction.  These tests replay that
scenario and exercise delay, pruning, residuals and clause-body
constraints.
"""

import pytest

from repro.core import SubtypeEngine
from repro.lang import parse_clause, parse_query
from repro.lp import Clause, ConstrainedInterpreter, Database
from repro.terms import Var, pretty
from repro.workloads import naturals


def clauses(*texts):
    return [Clause(c.head, c.body) for c in map(parse_clause, texts)]


PROGRAM = clauses(
    # p holds of every int it is given/generates — deliberately loose.
    "p(0).",
    "p(succ(0)).",
    "p(pred(0)).",
    # q accepts ints.
    "q(0).",
    "q(succ(0)).",
    "q(pred(0)).",
)


@pytest.fixture(scope="module")
def interpreter():
    return ConstrainedInterpreter(Database(PROGRAM), SubtypeEngine(naturals()))


def goals(text):
    return parse_query(text).body


def answer_values(result, name):
    return sorted(
        pretty(answer.substitution.apply(Var(name))) for answer in result.answers
    )


def test_paper_scenario_filters_unnat(interpreter):
    # Without the constraint, X ranges over {0, succ(0), pred(0)}; the
    # store keeps only the nats.
    unconstrained = interpreter.run(goals(":- p(X), q(X)."))
    assert len(unconstrained.answers) == 3
    constrained = interpreter.run(goals(":- p(X), X : nat, q(X)."))
    assert answer_values(constrained, "X") == ["0", "succ(0)"]
    assert constrained.pruned_by_constraints >= 1


def test_constraint_position_is_irrelevant_for_ground_flows(interpreter):
    before = interpreter.run(goals(":- X : nat, p(X), q(X)."))
    after = interpreter.run(goals(":- p(X), q(X), X : nat."))
    assert answer_values(before, "X") == answer_values(after, "X")


def test_ground_constraint_checked_immediately(interpreter):
    assert interpreter.run(goals(":- succ(0) : nat.")).answers
    result = interpreter.run(goals(":- pred(0) : nat."))
    assert not result.answers
    assert result.pruned_by_constraints == 1


def test_unresolved_constraint_is_residual(interpreter):
    result = interpreter.run(goals(":- X : nat."))
    assert len(result.answers) == 1
    answer = result.answers[0]
    assert not answer.unconditional
    assert str(answer.residual[0]) == "X : nat"


def test_constraint_delays_until_binding(interpreter):
    # The constraint is stated before p ever binds X: it must wait, then
    # fire on each candidate binding.
    result = interpreter.run(goals(":- X : unnat, p(X)."))
    assert answer_values(result, "X") == ["0", "pred(0)"]


def test_multiple_constraints_conjoin(interpreter):
    result = interpreter.run(goals(":- p(X), X : nat, X : unnat."))
    assert answer_values(result, "X") == ["0"]  # the only nat ∩ unnat member


def test_constraints_in_clause_bodies():
    program = PROGRAM + clauses("safe(X) :- p(X), X : nat.")
    interpreter = ConstrainedInterpreter(Database(program), SubtypeEngine(naturals()))
    result = interpreter.run(goals(":- safe(X)."))
    assert answer_values(result, "X") == ["0", "succ(0)"]


def test_max_answers(interpreter):
    result = interpreter.run(goals(":- p(X), X : int."), max_answers=2)
    assert len(result.answers) == 2


def test_pure_queries_unaffected(interpreter):
    result = interpreter.run(goals(":- p(succ(0))."))
    assert len(result.answers) == 1
    assert result.answers[0].unconditional
