"""Insertion sort under the type discipline, differentially tested
against Python's ``sorted`` on random nat lists."""

import random

import pytest

from repro import TypedInterpreter, pretty
from repro.lang import parse_query
from repro.lp import Query
from repro.terms import Struct, Var
from repro.workloads import load


@pytest.fixture(scope="module")
def module():
    return load("insertion_sort")


@pytest.fixture(scope="module")
def interpreter(module):
    return TypedInterpreter(module.checker, module.program, check_program=False)


def peano(n: int) -> Struct:
    term = Struct("0", ())
    for _ in range(n):
        term = Struct("succ", (term,))
    return term


def nat_list_term(values):
    term = Struct("nil", ())
    for value in reversed(values):
        term = Struct("cons", (peano(value), term))
    return term


def decode_list(term) -> list:
    out = []
    while term.functor == "cons":
        head, term = term.args
        count = 0
        while head.functor == "succ":
            count += 1
            head = head.args[0]
        out.append(count)
    return out


def sort_with_prolog(interpreter, values, check=False):
    goal = Struct("isort", (nat_list_term(values), Var("S")))
    result = interpreter.run(
        Query((goal,)),
        max_answers=1,
        check_resolvents=check,
        check_answers=check,
        check_query=False,
    )
    assert len(result.answers) == 1, values
    if check:
        assert result.consistent
    return decode_list(result.answers[0].apply(Var("S")))


def test_program_well_typed(module):
    assert module.ok
    assert len(module.program) == 9


def test_sorts_small_lists(interpreter):
    assert sort_with_prolog(interpreter, []) == []
    assert sort_with_prolog(interpreter, [2]) == [2]
    assert sort_with_prolog(interpreter, [3, 1, 2]) == [1, 2, 3]
    assert sort_with_prolog(interpreter, [1, 1, 0]) == [0, 1, 1]


def test_differential_against_sorted(interpreter):
    rng = random.Random(17)
    for _ in range(20):
        values = [rng.randint(0, 6) for _ in range(rng.randint(0, 7))]
        assert sort_with_prolog(interpreter, values) == sorted(values)


def test_sorting_execution_consistent(interpreter):
    # Theorem 6 observed on a multi-clause nondeterministic program.
    assert sort_with_prolog(interpreter, [2, 0, 1], check=True) == [0, 1, 2]


def test_untyped_query_rejected(module):
    report = module.checker.check_query(
        Query(parse_query(":- isort(cons(nil, nil), S).").body)
    )
    assert not report.well_typed  # a list of lists is not a list(nat)
