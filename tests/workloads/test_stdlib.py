"""Tests for the stdlib declaration builders."""

import pytest

from repro.core import SubtypeEngine, is_guarded, is_uniform_polymorphic
from repro.lang import parse_term as T
from repro.workloads import (
    constraint,
    ids_nonuniform,
    lists,
    naturals,
    paper_universe,
    rich_universe,
)


def test_constraint_parser_helper():
    parsed = constraint("nat >= 0 + succ(nat)")
    assert parsed.constructor == "nat"
    assert str(parsed) == "nat >= 0 + succ(nat)."


def test_constraint_helper_rejects_non_constraints():
    with pytest.raises(ValueError):
        constraint("p(X)")


def test_naturals_contents():
    cset = naturals()
    assert set(cset.symbols.functions) == {"0", "succ", "pred"}
    assert set(cset.symbols.type_constructors) == {"nat", "unnat", "int", "+"}
    assert len(cset.constraints_for("nat")) == 1


def test_lists_contents():
    cset = lists()
    assert "cons" in cset.symbols.functions
    assert cset.symbols.type_constructors["list"] == 1
    assert cset.symbols.type_constructors["nelist"] == 1


def test_builders_return_fresh_sets():
    first = naturals()
    second = naturals()
    assert first is not second
    first.symbols.declare_function("extra", 0)
    assert "extra" not in second.symbols.functions


def test_paper_universe_combines():
    cset = paper_universe()
    engine = SubtypeEngine(cset)
    assert engine.contains(T("list(nat)"), T("cons(0, nil)"))


def test_rich_universe_types_work():
    cset = rich_universe()
    assert is_uniform_polymorphic(cset) and is_guarded(cset)
    engine = SubtypeEngine(cset)
    assert engine.contains(T("bool"), T("true"))
    assert engine.contains(T("prod(nat, bool)"), T("pair(0, false)"))
    assert engine.contains(T("tree(nat)"), T("node(leaf(0), succ(0), leaf(0))"))
    assert not engine.contains(T("tree(nat)"), T("node(leaf(pred(0)), 0, leaf(0))"))


def test_ids_nonuniform_is_nonuniform():
    assert not is_uniform_polymorphic(ids_nonuniform())
