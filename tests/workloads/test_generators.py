"""Tests for the random workload generators (reproducibility, invariants)."""

import random

import pytest

from repro.checker import check_text
from repro.core import SubtypeEngine, is_guarded, is_uniform_polymorphic
from repro.lang import parse_term as T
from repro.terms import is_ground, term_depth, variables_of
from repro.workloads import (
    deep_int,
    deep_nat,
    nat_list,
    paper_universe,
    random_ground_member,
    random_guarded_constraint_set,
    random_subtype_pair,
    random_type,
    synthetic_list_program,
    wide_type_hierarchy,
)


def test_random_sets_are_uniform_and_guarded():
    for seed in range(10):
        cset = random_guarded_constraint_set(random.Random(seed))
        assert is_uniform_polymorphic(cset), seed
        assert is_guarded(cset), seed


def test_random_sets_reproducible():
    first = random_guarded_constraint_set(random.Random(42))
    second = random_guarded_constraint_set(random.Random(42))
    assert [str(c) for c in first] == [str(c) for c in second]


def test_random_set_size_parameters():
    cset = random_guarded_constraint_set(
        random.Random(1), type_count=4, function_count=3, constraints_per_type=3
    )
    # 4 types × 3 constraints + 2 predefined union constraints.
    assert len(cset) == 4 * 3 + 2
    assert len(cset.symbols.functions) == 3


def test_random_type_well_formed():
    cset = paper_universe()
    rng = random.Random(5)
    for _ in range(50):
        type_term = random_type(rng, cset, depth=3)
        cset.symbols.check_type(type_term)


def test_random_type_without_variables():
    cset = paper_universe()
    rng = random.Random(5)
    for _ in range(50):
        type_term = random_type(rng, cset, depth=3, allow_variables=False)
        assert is_ground(type_term)


def test_random_ground_member_is_member():
    cset = paper_universe()
    engine = SubtypeEngine(cset)
    rng = random.Random(9)
    for text in ["nat", "int", "list(nat)", "nelist(unnat)"]:
        member = random_ground_member(rng, cset, T(text), max_depth=4)
        assert member is not None
        assert engine.contains(T(text), member), (text, member)


def test_random_ground_member_empty_type():
    cset = paper_universe()
    cset.symbols.declare_type_constructor("ghost", 0)
    assert random_ground_member(random.Random(0), cset, T("ghost")) is None


def test_random_subtype_pair_candidate_ground():
    cset = paper_universe()
    rng = random.Random(3)
    for _ in range(20):
        _, candidate = random_subtype_pair(rng, cset, depth=2, member_depth=3)
        assert is_ground(candidate)


def test_deep_nat_and_int():
    assert term_depth(deep_nat(10)) == 11
    assert term_depth(deep_int(7)) == 8
    assert str(deep_nat(2)) == "succ(succ(0))"
    assert str(deep_int(1)) == "pred(0)"


def test_nat_list():
    term = nat_list(3, element_depth=0)
    assert str(term) == "cons(0, cons(0, cons(0, nil)))"
    assert term_depth(nat_list(0)) == 1


def test_synthetic_program_well_typed():
    source = synthetic_list_program(5)
    module = check_text(source)
    assert module.ok, module.diagnostics.render()
    # 1 base predicate + 4 delegating predicates, 2 clauses each.
    assert len(module.program) == 10


def test_synthetic_program_scales_linearly():
    small = check_text(synthetic_list_program(3))
    large = check_text(synthetic_list_program(30))
    assert small.ok and large.ok
    # 2 clauses per predicate in both cases.
    assert len(small.program) == 2 * 3
    assert len(large.program) == 2 * 30


def test_wide_hierarchy_checks():
    source = wide_type_hierarchy(8)
    module = check_text(source)
    assert module.ok, module.diagnostics.render()
    engine = SubtypeEngine(module.constraints)
    assert engine.contains(T("top"), T("k3"))
    assert not engine.contains(T("s1"), T("k3"))
