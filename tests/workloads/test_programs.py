"""Tests for the canonical programs catalogue."""

import pytest

from repro.checker import check_text
from repro.workloads import ILL_TYPED_EXAMPLES, SOURCES, load, load_all


def test_all_canonical_sources_load():
    modules = load_all()
    assert set(modules) == set(SOURCES)
    for name, module in modules.items():
        assert module.ok, name
        assert len(module.program) > 0


def test_load_unknown_raises():
    with pytest.raises(KeyError):
        load("nope")


def test_append_matches_paper():
    module = load("append")
    rendered = [str(clause) for clause in module.program]
    assert rendered[0] == "app(nil, L, L)."
    assert rendered[1] == "app(cons(X, L), M, cons(X, N)) :- app(L, M, N)."


def test_ill_typed_catalogue_is_rejected_wholesale():
    for name, source in ILL_TYPED_EXAMPLES.items():
        module = check_text(source)
        assert not module.ok, name


def test_catalogues_disjoint():
    assert not set(SOURCES) & set(ILL_TYPED_EXAMPLES)
