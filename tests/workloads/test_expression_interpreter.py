"""The typed expression interpreter, differentially tested against a
Python reference evaluator on randomly generated expressions."""

import random

import pytest

from repro import TypedInterpreter, pretty
from repro.lang import parse_query
from repro.lp import Query
from repro.terms import Var
from repro.workloads import load


@pytest.fixture(scope="module")
def module():
    return load("expression_interpreter")


@pytest.fixture(scope="module")
def interpreter(module):
    return TypedInterpreter(module.checker, module.program, check_program=False)


def peano(n: int) -> str:
    text = "0"
    for _ in range(n):
        text = f"succ({text})"
    return text


def from_peano(text: str) -> int:
    return text.count("succ")


# -- a Python reference implementation -----------------------------------------------


def random_aexp(rng: random.Random, depth: int):
    """Return (source_text, value) pairs built by structural recursion."""
    if depth == 0 or rng.random() < 0.3:
        n = rng.randint(0, 3)
        return f"lit({peano(n)})", n
    choice = rng.choice(["add", "mul", "if_e"])
    if choice == "add":
        left_text, left = random_aexp(rng, depth - 1)
        right_text, right = random_aexp(rng, depth - 1)
        return f"add({left_text}, {right_text})", left + right
    if choice == "mul":
        left_text, left = random_aexp(rng, depth - 1)
        right_text, right = random_aexp(rng, depth - 1)
        return f"mul({left_text}, {right_text})", left * right
    cond_text, cond = random_bexp(rng, depth - 1)
    then_text, then_value = random_aexp(rng, depth - 1)
    else_text, else_value = random_aexp(rng, depth - 1)
    return (
        f"if_e({cond_text}, {then_text}, {else_text})",
        then_value if cond else else_value,
    )


def random_bexp(rng: random.Random, depth: int):
    if depth == 0 or rng.random() < 0.4:
        value = rng.random() < 0.5
        return ("tt" if value else "ff"), value
    left_text, left = random_aexp(rng, depth - 1)
    right_text, right = random_aexp(rng, depth - 1)
    return f"leq({left_text}, {right_text})", left <= right


def evaluate(interpreter, text: str):
    query = Query(parse_query(f":- aeval({text}, R).").body)
    result = interpreter.run(query, max_answers=2, check_resolvents=False)
    assert len(result.answers) == 1, text  # evaluation is deterministic
    return from_peano(pretty(result.answers[0].apply(Var("R"))))


# -- tests ------------------------------------------------------------------------------


def test_program_is_well_typed(module):
    assert module.ok
    assert len(module.program) == 17


def test_simple_evaluations(interpreter):
    assert evaluate(interpreter, f"lit({peano(3)})") == 3
    assert evaluate(interpreter, f"add(lit({peano(1)}), lit({peano(2)}))") == 3
    assert evaluate(interpreter, f"mul(lit({peano(2)}), lit({peano(3)}))") == 6


def test_conditionals(interpreter):
    text = f"if_e(leq(lit({peano(1)}), lit({peano(2)})), lit({peano(7)}), lit({peano(0)}))"
    assert evaluate(interpreter, text) == 7
    text = f"if_e(leq(lit({peano(3)}), lit({peano(2)})), lit({peano(7)}), lit({peano(1)}))"
    assert evaluate(interpreter, text) == 1


def test_boolean_evaluation(interpreter):
    query = Query(parse_query(f":- beval(leq(lit({peano(2)}), lit({peano(2)})), B).").body)
    result = interpreter.run(query)
    assert pretty(result.answers[0].apply(Var("B"))) == "tt"


def test_differential_against_reference(interpreter):
    rng = random.Random(42)
    for _ in range(25):
        text, expected = random_aexp(rng, 3)
        assert evaluate(interpreter, text) == expected, text


def test_execution_is_consistent(interpreter):
    query = Query(
        parse_query(
            f":- aeval(mul(add(lit({peano(1)}), lit({peano(1)})), lit({peano(2)})), R)."
        ).body
    )
    result = interpreter.run(query)
    assert result.consistent
    assert result.resolvents_checked > 5


def test_ill_typed_queries_rejected(module):
    for text in [
        ":- aeval(tt, R).",
        ":- beval(lit(0), B).",
        ":- aeval(lit(0), lit(0)).",
        ":- aeval(if_e(lit(0), lit(0), lit(0)), R).",
        ":- aeval(add(tt, lit(0)), R).",
    ]:
        report = module.checker.check_query(Query(parse_query(text).body))
        assert not report.well_typed, text


def test_ast_types_partition(module):
    from repro.core import SubtypeEngine
    from repro.lang import parse_term as T

    engine = SubtypeEngine(module.constraints)
    assert engine.contains(T("aexp"), T("lit(0)"))
    assert engine.contains(T("bexp"), T("leq(lit(0), lit(0))"))
    assert not engine.contains(T("aexp"), T("tt"))
    assert not engine.contains(T("bexp"), T("lit(0)"))
    # tt is both a bexp and a bool (truth value) — by design.
    assert engine.contains(T("bool"), T("tt"))
