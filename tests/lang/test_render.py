"""Round-trip tests: render a checked module to source and re-check it."""

import pytest

from repro.checker import check_text
from repro.lang.render import (
    render_constraints,
    render_module,
    render_predicate_types,
    render_program,
    render_symbols,
)
from repro.workloads import SOURCES


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_round_trip_canonical_programs(name):
    original = check_text(SOURCES[name])
    assert original.ok
    rendered = render_module(
        original.constraints,
        original.predicate_types,
        original.program,
        original.queries,
        original.modes,
    )
    reparsed = check_text(rendered)
    assert reparsed.ok, reparsed.diagnostics.render()
    # Same shape: clause-for-clause identical programs, same constraints.
    assert [str(c) for c in reparsed.program] == [str(c) for c in original.program]
    assert render_constraints(reparsed.constraints) == render_constraints(
        original.constraints
    )
    assert render_predicate_types(reparsed.predicate_types) == render_predicate_types(
        original.predicate_types
    )


def test_round_trip_with_modes():
    source = """
FUNC 0, succ, pred.
TYPE nat, unnat, int.
nat >= 0 + succ(nat).
unnat >= 0 + pred(unnat).
int >= nat + unnat.
PRED p(nat).
MODE p(OUT).
PRED q(int).
MODE q(IN).
p(0).
q(0).
:- p(X), q(X).
"""
    original = check_text(source)
    assert original.ok
    rendered = render_module(
        original.constraints,
        original.predicate_types,
        original.program,
        original.queries,
        original.modes,
    )
    assert "MODE p(OUT)." in rendered
    reparsed = check_text(rendered)
    assert reparsed.ok, reparsed.diagnostics.render()
    assert len(reparsed.queries) == 1


def test_render_symbols_skips_predefined_union():
    module = check_text(SOURCES["append"])
    rendered = render_symbols(module.constraints.symbols)
    assert "+" not in rendered
    assert "FUNC" in rendered and "TYPE" in rendered


def test_render_program_matches_clause_str():
    module = check_text(SOURCES["append"])
    rendered = render_program(module.program)
    assert "app(nil, L, L)." in rendered
    assert ":-" in rendered  # the recursive clause
