"""Robustness fuzzing for the lexer/parser, and print→parse round trips.

Whatever bytes arrive, the frontend must answer with a value or a
*diagnosable* error (LexError / ParseError) — never any other exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_text
from repro.lang import LexError, ParseError, parse_clause, parse_file
from repro.lp import Clause
from repro.terms import Struct, Var, pretty


@given(st.text(max_size=200))
@settings(max_examples=500)
def test_parse_file_total_on_arbitrary_text(text):
    try:
        parse_file(text)
    except (ParseError, LexError):
        pass


TOKEN_SOUP = st.lists(
    st.sampled_from(
        [
            "FUNC", "TYPE", "PRED", "MODE", "IN", "OUT",
            "nat", "cons", "0", "X", "A", "_Y",
            "(", ")", ",", ".", ":-", ">=", "+", "%c\n",
        ]
    ),
    max_size=40,
)


@given(TOKEN_SOUP)
@settings(max_examples=500)
def test_parse_file_total_on_token_soup(tokens):
    text = " ".join(tokens)
    try:
        parse_file(text)
    except (ParseError, LexError):
        pass


@given(st.text(max_size=300))
@settings(max_examples=200)
def test_check_text_never_crashes(text):
    module = check_text(text)
    # Either a usable module or diagnostics — never an exception.
    assert module.ok or module.diagnostics.has_errors or not text.strip()


# -- print → parse round trips for clauses ---------------------------------------------

variables = st.sampled_from([Var("X"), Var("Y"), Var("Zs")])
constants = st.sampled_from([Struct("nil"), Struct("a"), Struct("0")])


def _terms(depth):
    if depth == 0:
        return variables | constants
    smaller = _terms(depth - 1)
    return (
        variables
        | constants
        | st.builds(
            lambda f, args: Struct(f, tuple(args)),
            st.sampled_from(["f", "cons"]),
            st.lists(smaller, min_size=1, max_size=2),
        )
    )


atoms = st.builds(
    lambda name, args: Struct(name, tuple(args)),
    st.sampled_from(["p", "q", "likes"]),
    st.lists(_terms(2), min_size=0, max_size=3),
)


@given(atoms, st.lists(atoms, max_size=3))
@settings(max_examples=300)
def test_clause_print_parse_round_trip(head, body):
    clause = Clause(head, tuple(body))
    parsed = parse_clause(str(clause))
    assert parsed.head == head
    assert parsed.body == tuple(body)
