"""Source spans: token end positions and parser item ranges.

The lexer stamps every token with ``end_line``/``end_column`` (half-open:
``end_column`` points one past the last character) and the parser gives
every item a ``Position`` spanning from its first token through its
closing dot — the ranges diagnostics and SARIF regions report.
"""

from repro.lang import tokenize
from repro.lang.ast import Position
from repro.lang.parser import parse_file


def test_token_end_positions_cover_text():
    tokens = tokenize("app(nil, Xs).")
    for token in tokens[:-1]:  # skip EOF
        assert token.end_line == token.line
        assert token.end_column == token.column + len(token.text)


def test_token_positions_one_based():
    first = tokenize("nil")[0]
    assert (first.line, first.column) == (1, 1)
    assert (first.end_line, first.end_column) == (1, 4)


def test_multiline_tokens_track_lines():
    tokens = tokenize("foo.\nbar.\n")
    bar = [t for t in tokens if t.text == "bar"][0]
    assert bar.line == 2 and bar.column == 1
    assert bar.end_line == 2 and bar.end_column == 4


def test_eof_column_after_trailing_comment_without_newline():
    # Regression: comment consumption used to leave the EOF column stale.
    tokens = tokenize("nil. % trailing comment")
    eof = tokens[-1]
    assert eof.column == len("nil. % trailing comment") + 1
    assert eof.end_column == eof.column


def test_token_equality_ignores_end_fields():
    # Back-compat: positions compare by (line, column) only.
    with_span, without = tokenize("nil")[0], tokenize("nil")[0]
    assert with_span == without
    assert Position(1, 2) == Position(1, 2, 1, 9)
    assert hash(Position(1, 2)) == hash(Position(1, 2, 1, 9))


def test_position_has_span():
    assert not Position(1, 1).has_span
    assert Position(1, 1, 1, 5).has_span
    assert str(Position(3, 7, 3, 9)) == "3:7"


def test_item_spans_cover_through_closing_dot():
    source = parse_file("FUNC nil, cons.\n")
    item = source.items[0]
    assert (item.position.line, item.position.column) == (1, 1)
    assert item.position.end_line == 1
    assert item.position.end_column == len("FUNC nil, cons.") + 1


def test_clause_span_covers_multiline_item():
    text = "FUNC nil.\nTYPE t.\nt >= nil.\nPRED p(t).\np(X) :-\n    p(X).\n"
    source = parse_file(text)
    clause = source.items[-1]
    assert clause.position.line == 5
    assert clause.position.end_line == 6
    assert clause.position.end_column == len("    p(X).") + 1


def test_each_item_gets_its_own_span():
    source = parse_file("FUNC nil.\nTYPE t.\n")
    first, second = source.items
    assert first.position.line == 1 and first.position.end_line == 1
    assert second.position.line == 2 and second.position.end_line == 2
