"""Lexer tests: token kinds, positions, keyword/variable disambiguation."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]  # drop EOF


def test_empty_input_yields_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == TokenKind.EOF


def test_simple_fact():
    assert kinds("app(nil,L,L).") == [
        TokenKind.NAME,
        TokenKind.LPAREN,
        TokenKind.NAME,
        TokenKind.COMMA,
        TokenKind.VARIABLE,
        TokenKind.COMMA,
        TokenKind.VARIABLE,
        TokenKind.RPAREN,
        TokenKind.DOT,
        TokenKind.EOF,
    ]


def test_keywords_recognised():
    assert kinds("FUNC TYPE PRED MODE IN OUT")[:-1] == [TokenKind.KEYWORD] * 6


def test_uppercase_identifier_is_variable_not_keyword():
    tokens = tokenize("FUNCX Fred INX")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.VARIABLE] * 3


def test_numerals_are_names():
    tokens = tokenize("0 42")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.NAME, TokenKind.NAME]


def test_underscore_starts_variable():
    tokens = tokenize("_x _G12")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.VARIABLE] * 2


def test_operators():
    assert kinds(":- >= +")[:-1] == [TokenKind.IMPLIES, TokenKind.GEQ, TokenKind.PLUS]


def test_comment_skipped():
    tokens = tokenize("a. % comment with FUNC and :- inside\nb.")
    assert texts("a. % c\nb.") == ["a", ".", "b", "."]
    assert [t.text for t in tokens[:-1]] == ["a", ".", "b", "."]


def test_positions_tracked():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_constraint_line():
    assert texts("nat >= 0 + succ(nat).") == [
        "nat", ">=", "0", "+", "succ", "(", "nat", ")", ".",
    ]


def test_unexpected_character():
    with pytest.raises(LexError) as info:
        tokenize("a ? b")
    assert info.value.line == 1
    assert info.value.column == 3


def test_cased_non_alphanumeric_codepoint_is_lex_error():
    # U+24B6 CIRCLED LATIN CAPITAL LETTER A passes str.isupper() without
    # being alphanumeric; it must surface as a LexError, not an
    # IndexError from a zero-length identifier (found by the fuzzer).
    with pytest.raises(LexError) as info:
        tokenize("Ⓐ")
    assert "unexpected character" in str(info.value)


def test_bare_colon_is_constraint_token():
    tokens = tokenize("X : nat")
    assert [t.kind for t in tokens[:-1]] == [
        TokenKind.VARIABLE,
        TokenKind.COLON,
        TokenKind.NAME,
    ]


def test_greater_without_equals_is_error():
    with pytest.raises(LexError):
        tokenize("a > b")
