"""Parser tests: terms, declarations, clauses, queries, error positions."""

import pytest

from repro.lang import (
    ClauseDecl,
    ConstraintDecl,
    FuncDecl,
    ModeDecl,
    ParseError,
    PredDecl,
    QueryDecl,
    TypeDecl,
    parse_atom,
    parse_clause,
    parse_file,
    parse_query,
    parse_term,
)
from repro.terms import Struct, Var, atom, struct


def test_parse_variable():
    assert parse_term("Xs") == Var("Xs")


def test_parse_constant():
    assert parse_term("nil") == atom("nil")


def test_parse_application():
    assert parse_term("cons(X, nil)") == struct("cons", Var("X"), atom("nil"))


def test_parse_nested_application():
    assert parse_term("succ(succ(0))") == struct("succ", struct("succ", atom("0")))


def test_parse_union_left_associative():
    parsed = parse_term("a + b + c")
    assert parsed == struct("+", struct("+", atom("a"), atom("b")), atom("c"))


def test_parse_union_parenthesised():
    parsed = parse_term("a + (b + c)")
    assert parsed == struct("+", atom("a"), struct("+", atom("b"), atom("c")))


def test_parse_union_in_argument():
    parsed = parse_term("list(a + b)")
    assert parsed == struct("list", struct("+", atom("a"), atom("b")))


def test_parse_term_rejects_trailing_input():
    with pytest.raises(ParseError):
        parse_term("a b")


def test_parse_atom_rejects_variable():
    with pytest.raises(ParseError):
        parse_atom("X")


def test_parse_func_decl():
    items = parse_file("FUNC 0, succ, pred.").items
    assert items == [FuncDecl(("0", "succ", "pred"), items[0].position)]


def test_parse_type_decl():
    (item,) = parse_file("TYPE nat, unnat, int.").items
    assert isinstance(item, TypeDecl)
    assert item.names == ("nat", "unnat", "int")


def test_parse_constraint_decl():
    (item,) = parse_file("nat >= 0 + succ(nat).").items
    assert isinstance(item, ConstraintDecl)
    assert item.lhs == atom("nat")
    assert item.rhs == struct("+", atom("0"), struct("succ", atom("nat")))


def test_parse_polymorphic_constraint():
    (item,) = parse_file("nelist(A) >= cons(A,list(A)).").items
    assert isinstance(item, ConstraintDecl)
    assert item.lhs == struct("nelist", Var("A"))


def test_parse_pred_decl():
    (item,) = parse_file("PRED app(list(A),list(A),list(A)).").items
    assert isinstance(item, PredDecl)
    assert item.head.functor == "app"
    assert len(item.head.args) == 3


def test_parse_nullary_pred_decl():
    (item,) = parse_file("PRED halt.").items
    assert isinstance(item, PredDecl)
    assert item.head == atom("halt")


def test_parse_mode_decl():
    (item,) = parse_file("MODE app(IN, IN, OUT).").items
    assert isinstance(item, ModeDecl)
    assert item.name == "app"
    assert item.modes == ("IN", "IN", "OUT")


def test_parse_fact():
    clause = parse_clause("app(nil,L,L).")
    assert clause.head == struct("app", atom("nil"), Var("L"), Var("L"))
    assert clause.body == ()


def test_parse_rule():
    clause = parse_clause("app(cons(X,L),M,cons(X,N)) :- app(L,M,N).")
    assert clause.head.functor == "app"
    assert len(clause.body) == 1
    assert clause.body[0].functor == "app"


def test_parse_rule_with_long_body():
    clause = parse_clause("a :- b, c, d.")
    assert [g.functor for g in clause.body] == ["b", "c", "d"]


def test_parse_query():
    query = parse_query(":- app(nil, 0, 0).")
    assert len(query.body) == 1
    assert query.body[0] == struct("app", atom("nil"), atom("0"), atom("0"))


def test_parse_whole_file_in_order():
    source = parse_file(
        """
        % the paper's list example
        FUNC nil, cons.
        TYPE elist, nelist, list.
        elist >= nil.
        nelist(A) >= cons(A,list(A)).
        list(A) >= elist + nelist(A).
        PRED app(list(A),list(A),list(A)).
        app(nil,L,L).
        app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
        :- app(nil,nil,X).
        """
    )
    kinds = [type(item).__name__ for item in source.items]
    assert kinds == [
        "FuncDecl",
        "TypeDecl",
        "ConstraintDecl",
        "ConstraintDecl",
        "ConstraintDecl",
        "PredDecl",
        "ClauseDecl",
        "ClauseDecl",
        "QueryDecl",
    ]


def test_missing_dot_is_error():
    with pytest.raises(ParseError):
        parse_file("FUNC nil")


def test_union_head_rejected():
    with pytest.raises(ParseError):
        parse_file("a + b :- c.")


def test_variable_head_rejected():
    with pytest.raises(ParseError):
        parse_file("X :- c.")


def test_error_carries_position():
    with pytest.raises(ParseError) as info:
        parse_file("FUNC nil,\n.")
    assert info.value.token.line == 2


def test_parse_constraint_goal_in_query():
    query = parse_query(":- p(X), X : nat, q(X).")
    assert len(query.body) == 3
    constraint = query.body[1]
    assert constraint.functor == ":"
    assert constraint.args == (Var("X"), atom("nat"))


def test_parse_constraint_with_compound_sides():
    query = parse_query(":- succ(X) : succ(nat).")
    (goal,) = query.body
    assert goal.functor == ":"
    assert goal.args[0] == struct("succ", Var("X"))
    assert goal.args[1] == struct("succ", atom("nat"))


def test_parse_constraint_in_clause_body():
    clause = parse_clause("safe(X) :- p(X), X : nat.")
    assert clause.body[1].functor == ":"


def test_bare_variable_goal_still_rejected():
    with pytest.raises(ParseError):
        parse_query(":- X.")


def test_mode_requires_in_or_out():
    with pytest.raises(ParseError):
        parse_file("MODE app(IN, X).")


def test_of_kind_helper():
    source = parse_file("FUNC a.\nTYPE t.\nt >= a.")
    assert len(source.of_kind(FuncDecl)) == 1
    assert len(source.of_kind(ConstraintDecl)) == 1


# -- Section 7 inline PRED modes ---------------------------------------------


def test_pred_inline_modes_parse():
    source = parse_file("PRED p(OUT nat, IN int).\n")
    (pred,) = source.items
    assert isinstance(pred, PredDecl)
    assert pred.modes == ("OUT", "IN")
    assert [str(arg) for arg in pred.head.args] == ["nat", "int"]


def test_plain_pred_has_no_modes():
    source = parse_file("PRED p(nat).\n")
    (pred,) = source.items
    assert pred.modes is None


def test_pred_inline_modes_all_or_nothing():
    with pytest.raises(ParseError, match="every PRED argument"):
        parse_file("PRED p(OUT nat, int).\n")
    with pytest.raises(ParseError, match="every PRED argument"):
        parse_file("PRED p(nat, IN int).\n")


def test_pred_inline_modes_compose_with_parametric_types():
    source = parse_file("PRED app(IN list(A), IN list(A), OUT list(A)).\n")
    (pred,) = source.items
    assert pred.modes == ("IN", "IN", "OUT")
    assert str(pred.head.args[2]) == "list(A)"
