"""The asyncio multi-client server: ids, concurrency, cancel, drain."""

import asyncio
import json

from repro import obs
from repro.service.aserver import AsyncCheckServer
from repro.service.aserver.protocol import encode_line
from repro.workloads import APPEND
from repro.workloads.generators import synthetic_list_program

ILL = "FUNC nil.\nPRED p(nope).\np(nil).\n"


async def _connect(port):
    return await asyncio.open_connection("127.0.0.1", port)


async def _send(writer, message):
    writer.write(encode_line(message))
    await writer.drain()


async def _recv(reader, timeout=30.0):
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line.decode("utf-8"))


def _run(client_logic, **server_kwargs):
    """Start a server on an ephemeral TCP port, run the client logic."""

    async def runner():
        server = AsyncCheckServer(**server_kwargs)
        _, port = await server.start_tcp()
        try:
            return await client_logic(server, port)
        finally:
            await server.shutdown()

    return asyncio.run(runner())


def test_check_roundtrip_echoes_request_ids():
    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"id": "a", "op": "check", "text": APPEND})
        await _send(writer, {"id": "b", "op": "check", "text": ILL})
        first = await _recv(reader)
        second = await _recv(reader)
        by_id = {first["id"]: first, second["id"]: second}
        assert by_id["a"]["ok"] and by_id["a"]["well_typed"]
        assert by_id["b"]["ok"] and not by_id["b"]["well_typed"]
        assert by_id["b"]["diagnostics"]
        writer.close()

    _run(logic)


def test_unknown_op_and_malformed_json_answer_errors():
    async def logic(server, port):
        reader, writer = await _connect(port)
        writer.write(b"this is not json\n")
        await writer.drain()
        response = await _recv(reader)
        assert not response["ok"] and "malformed" in response["error"]
        await _send(writer, {"id": 1, "op": "frobnicate"})
        response = await _recv(reader)
        assert not response["ok"] and response["id"] == 1
        writer.close()

    _run(logic)


def test_eight_concurrent_clients_are_isolated():
    async def one_client(port, index):
        reader, writer = await _connect(port)
        for sequence in range(3):
            await _send(
                writer,
                {"id": f"c{index}-{sequence}", "op": "check", "text": APPEND},
            )
        responses = [await _recv(reader) for _ in range(3)]
        writer.close()
        return responses

    async def logic(server, port):
        results = await asyncio.gather(
            *(one_client(port, index) for index in range(8))
        )
        for index, responses in enumerate(results):
            assert [r["id"] for r in responses] == [
                f"c{index}-{sequence}" for sequence in range(3)
            ]
            assert all(r["well_typed"] for r in responses)

    _run(logic)


def test_slow_client_does_not_block_fast_client():
    slow_text = synthetic_list_program(300)

    async def logic(server, port):
        slow_reader, slow_writer = await _connect(port)
        fast_reader, fast_writer = await _connect(port)
        await _send(slow_writer, {"id": 1, "op": "check", "text": slow_text})
        # The fast client's tiny check must complete while the slow
        # one's is still in flight on another executor thread.
        await _send(fast_writer, {"id": 2, "op": "check", "text": APPEND})
        fast = await _recv(fast_reader, timeout=10.0)
        assert fast["id"] == 2 and fast["well_typed"]
        slow = await _recv(slow_reader)
        assert slow["id"] == 1 and slow["well_typed"]
        slow_writer.close()
        fast_writer.close()

    _run(logic)


def test_cancel_aborts_in_flight_check():
    slow_text = synthetic_list_program(800)

    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"id": 7, "op": "check", "text": slow_text})
        await asyncio.sleep(0.05)  # let the check reach the executor
        await _send(writer, {"op": "cancel", "target": 7, "id": 8})
        ack = await _recv(reader)
        assert ack["op"] == "cancel" and ack["found"] and ack["id"] == 8
        outcome = await _recv(reader)
        assert outcome["id"] == 7
        assert outcome["cancelled"] and not outcome["ok"]
        assert "checkpoint" in outcome["error"]
        writer.close()

    _run(logic)


def test_cancel_of_queued_request_prevents_it_running():
    slow_text = synthetic_list_program(300)

    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"id": 1, "op": "check", "text": slow_text})
        await _send(writer, {"id": 2, "op": "check", "text": slow_text})
        await _send(writer, {"op": "cancel", "target": 2})
        ack = await _recv(reader)
        assert ack["op"] == "cancel" and ack["found"]
        first = await _recv(reader)
        second = await _recv(reader)
        assert first["id"] == 1
        assert second["id"] == 2 and second["cancelled"]
        writer.close()

    _run(logic)


def test_cancel_of_unknown_target_reports_not_found():
    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"op": "cancel", "target": "nope"})
        ack = await _recv(reader)
        assert ack["ok"] and not ack["found"]
        writer.close()

    _run(logic)


def test_bounded_queue_survives_a_flood():
    async def logic(server, port):
        reader, writer = await _connect(port)
        total = 40  # far beyond max_queue=2: the reader must pace us
        for sequence in range(total):
            await _send(writer, {"id": sequence, "op": "check", "text": APPEND})
        responses = [await _recv(reader) for _ in range(total)]
        assert [r["id"] for r in responses] == list(range(total))
        assert all(r["well_typed"] for r in responses)
        writer.close()

    _run(logic, max_queue=2)


def test_shutdown_op_drains_pending_work():
    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"id": 1, "op": "check", "text": APPEND})
        await _send(writer, {"id": 2, "op": "check", "text": APPEND})
        await _send(writer, {"id": 3, "op": "shutdown"})
        first = await _recv(reader)
        second = await _recv(reader)
        bye = await _recv(reader)
        assert first["id"] == 1 and first["well_typed"]
        assert second["id"] == 2 and second["well_typed"]
        assert bye["id"] == 3 and bye["bye"]
        await asyncio.wait_for(server.wait_closed(), timeout=10.0)
        # Post-drain the connection is closed out from under us.
        trailing = await asyncio.wait_for(reader.readline(), timeout=10.0)
        assert trailing == b""

    _run(logic)


def test_new_connections_rejected_while_draining():
    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"op": "shutdown"})
        await _recv(reader)
        await asyncio.wait_for(server.wait_closed(), timeout=10.0)
        try:
            await _connect(port)
        except OSError:
            pass  # listener is gone — the expected outcome
        else:
            raise AssertionError("drained server accepted a connection")

    _run(logic)


def test_stats_and_metrics_carry_aserver_telemetry():
    async def logic(server, port):
        obs.METRICS.enable()
        reader, writer = await _connect(port)
        await _send(writer, {"id": 1, "op": "check", "text": APPEND})
        await _recv(reader)
        await _send(writer, {"id": 2, "op": "stats"})
        stats = await _recv(reader)
        assert stats["ok"] and stats["aserver"]["clients"] == 1
        assert stats["aserver"]["max_queue"] >= 1
        await _send(writer, {"id": 3, "op": "metrics"})
        metrics = await _recv(reader)
        assert "aserver_clients" in metrics["body"]
        assert "service_aserver_requests" in metrics["body"]
        writer.close()

    _run(logic)


def test_client_disconnect_cancels_its_inflight_work():
    slow_text = synthetic_list_program(800)

    async def logic(server, port):
        reader, writer = await _connect(port)
        await _send(writer, {"id": 1, "op": "check", "text": slow_text})
        await asyncio.sleep(0.05)
        writer.close()  # vanish mid-check
        for _ in range(100):
            if server.service.cancellations:
                break
            await asyncio.sleep(0.05)
        assert server.service.cancellations >= 1

    _run(logic)
