"""Lint wired through the batch service: cache keys carry the rule-set
fingerprint, warm runs replay findings without re-linting, and the
daemon answers ``lint`` requests."""

import json

from repro.analysis import LintConfig, ruleset_fingerprint
from repro.service.cache import CHECKER_VERSION, CachedResult, ResultCache
from repro.service.daemon import CheckService
from repro.service.project import Project, ProjectFile, fingerprint
from repro.service.runner import run_batch

CLEAN_WITH_SINGLETON = """\
FUNC nil.
TYPE t.
t >= nil.
PRED p(t).
PRED q(t).
q(X) :- p(X), p(Y).
"""


def make_project(tmp_path, text=CLEAN_WITH_SINGLETON):
    path = tmp_path / "member.tlp"
    path.write_text(text)
    project = Project(name="lint-test", root=tmp_path)
    project.files.append(ProjectFile.read(path, display="member.tlp"))
    return project


def test_checker_version_is_bumped():
    # Built-in constraint signatures and the TLP6xx polymorphic rules
    # change frontend verdicts and lint findings: version "5" indexes
    # (and older) must not replay into this build.
    assert CHECKER_VERSION == "6"


def test_lint_findings_ride_in_results_and_cache(tmp_path):
    project = make_project(tmp_path)
    config = LintConfig()
    cache = ResultCache(
        str(tmp_path / "cache"), ruleset=ruleset_fingerprint(config)
    )
    cold = run_batch(project, cache=cache, jobs=1, lint=config)
    assert len(cold.results) == 1
    assert cold.cache_misses == 1
    assert any("TLP203" in line for line in cold.results[0].lint)
    cache.save()

    warm_cache = ResultCache(
        str(tmp_path / "cache"), ruleset=ruleset_fingerprint(config)
    )
    warm = run_batch(project, cache=warm_cache, jobs=1, lint=config)
    assert warm.cache_hits == 1 and warm.cache_misses == 0
    # The warm run replays the lint lines byte-for-byte.
    assert warm.results[0].lint == cold.results[0].lint


def test_ruleset_change_invalidates_only_lint_entries(tmp_path):
    project = make_project(tmp_path)
    base = LintConfig()
    cache = ResultCache(
        str(tmp_path / "cache"), ruleset=ruleset_fingerprint(base)
    )
    run_batch(project, cache=cache, jobs=1, lint=base)
    cache.save()

    # Same corpus, singleton rule disabled: different fingerprint, miss.
    trimmed = LintConfig(disabled=frozenset({"TLP203"}))
    other = ResultCache(
        str(tmp_path / "cache"), ruleset=ruleset_fingerprint(trimmed)
    )
    report = run_batch(project, cache=other, jobs=1, lint=trimmed)
    assert report.cache_hits == 0 and report.cache_misses == 1
    assert report.results[0].lint == ()
    other.save()

    # The original rule set still hits its own entries.
    again = ResultCache(
        str(tmp_path / "cache"), ruleset=ruleset_fingerprint(base)
    )
    report = run_batch(project, cache=again, jobs=1, lint=base)
    assert report.cache_hits == 1


def test_no_lint_runs_use_the_legacy_two_part_key(tmp_path):
    project = make_project(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"))
    run_batch(project, cache=cache, jobs=1)
    cache.save()
    digest = project.files[0].digest
    index = json.loads((tmp_path / "cache" / "tlp-cache.json").read_text())
    assert f"{digest}.{project.declarations_digest}" in index["entries"]


def test_key_static_method_back_compat():
    assert ResultCache.key("f1", "d1") == "f1.d1"
    assert ResultCache.key("f1", "d1", "rs") == "f1.d1.rs"


def test_cached_result_lint_back_compat():
    # Pre-lint payloads (no "lint" key) still load.
    payload = {
        "ok": True,
        "diagnostics": [],
        "clauses": 1,
        "queries": 0,
        "duration_s": 0.1,
        "checked_at": 0.0,
    }
    restored = CachedResult.from_json(payload)
    assert restored.lint == ()
    assert CachedResult.from_json(restored.to_json()) == restored


def test_lint_runs_under_thread_pool(tmp_path):
    for name in ("a", "b", "c"):
        (tmp_path / f"{name}.tlp").write_text(CLEAN_WITH_SINGLETON)
    project = Project(name="pool", root=tmp_path)
    for name in ("a", "b", "c"):
        project.files.append(
            ProjectFile.read(tmp_path / f"{name}.tlp", display=f"{name}.tlp")
        )
    report = run_batch(project, jobs=2, use="thread", lint=LintConfig())
    assert all(
        any("TLP203" in line for line in result.lint)
        for result in report.results
    )


# -- daemon -------------------------------------------------------------------


def test_daemon_lint_request_structured_findings():
    service = CheckService()
    response = service.handle(
        {"op": "lint", "text": CLEAN_WITH_SINGLETON}
    )
    assert response["ok"] and response["op"] == "lint"
    assert response["digest"] == fingerprint(CLEAN_WITH_SINGLETON)
    assert response["errors"] == 0 and response["warnings"] == 1
    finding = response["findings"][0]
    assert finding["code"] == "TLP203"
    assert finding["severity"] == "warning"
    assert finding["line"] == 6 and "end_column" in finding
    assert any("_Y" in fixit for fixit in finding["fixits"])


def test_daemon_lint_respects_disable():
    service = CheckService()
    response = service.handle(
        {"op": "lint", "text": CLEAN_WITH_SINGLETON, "disable": "TLP203"}
    )
    assert response["findings"] == []


def test_daemon_lint_reports_syntax_errors():
    service = CheckService()
    response = service.handle({"op": "lint", "text": "FUNC nil"})
    assert response["errors"] == 1
    assert response["findings"][0]["code"] == "TLP001"


def test_daemon_lint_needs_exactly_one_input():
    service = CheckService()
    assert not service.handle({"op": "lint"})["ok"]
    assert not service.handle(
        {"op": "lint", "text": "x.", "path": "y.tlp"}
    )["ok"]


def test_daemon_stats_count_lints():
    service = CheckService()
    service.handle({"op": "lint", "text": CLEAN_WITH_SINGLETON})
    stats = service.handle({"op": "stats"})["stats"]
    assert stats["lints"] == 1


ILL_MODED_QUERY = """\
TYPE nat, int.
FUNC 0, pred.
int >= nat.
nat >= 0.
int >= pred(int).
PRED makeint(int).
MODE makeint(OUT).
makeint(0).
PRED usenat(nat).
MODE usenat(IN).
usenat(0).
:- makeint(X), usenat(X).
"""


def test_daemon_lint_reports_mode_findings_with_fixits():
    service = CheckService()
    response = service.handle({"op": "lint", "text": ILL_MODED_QUERY})
    assert response["ok"]
    moded = [f for f in response["findings"] if f["code"] == "TLP502"]
    assert len(moded) == 1
    finding = moded[0]
    assert finding["severity"] == "error"
    assert finding["line"] == 12
    assert any("filter goal" in fixit for fixit in finding["fixits"])
