"""Execution layer: cold/warm runs, parallel workers, telemetry aggregation.

Covers the service's central guarantees: a warm run replays cold-run
diagnostics byte-for-byte without invoking the checker, invalidation is
exactly content/declarations-keyed, and telemetry under the worker pool
is lossless (no lost updates, no cross-worker double counting) for both
the thread and the process flavour.
"""

import pytest

from repro import obs
from repro.obs import METRICS
from repro.service.cache import ResultCache
from repro.service.project import load_project
from repro.service.runner import run_batch


def batch(path, cache=None, **kwargs):
    return run_batch(load_project([str(path)]), cache=cache, **kwargs)


# -- cold vs warm ------------------------------------------------------------


def test_warm_run_replays_cold_run_exactly(corpus_dir, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cold = batch(corpus_dir, cache)
    assert cold.ok and cold.cache_hits == 0 and cold.files_checked == 2

    warm_cache = ResultCache(str(tmp_path / "cache"))  # fresh load from disk
    warm = batch(corpus_dir, warm_cache)
    assert warm.hit_rate == 1.0
    assert warm.files_checked == 0  # Definition 16 pipeline never ran
    assert [r.from_cache for r in warm.results] == [True, True]
    assert [(r.display, r.ok, r.diagnostics) for r in warm.results] == [
        (r.display, r.ok, r.diagnostics) for r in cold.results
    ]
    assert [r.summary_line().replace(" [cached]", "") for r in warm.results] == [
        r.summary_line() for r in cold.results
    ]


def test_ill_typed_diagnostics_cached_byte_identically(mixed_corpus_dir, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cold = batch(mixed_corpus_dir, cache)
    assert not cold.ok and cold.exit_code == 1
    warm = batch(mixed_corpus_dir, cache)
    assert warm.exit_code == 1 and warm.hit_rate == 1.0
    cold_diags = {r.display: r.diagnostics for r in cold.results}
    warm_diags = {r.display: r.diagnostics for r in warm.results}
    assert warm_diags == cold_diags
    assert any(warm_diags.values())  # the ill-typed member kept its messages


def test_force_rechecks_but_keeps_recording(corpus_dir, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    batch(corpus_dir, cache)
    forced = batch(corpus_dir, cache, force=True)
    assert forced.cache_hits == 0 and forced.files_checked == 2
    warm = batch(corpus_dir, cache)
    assert warm.hit_rate == 1.0


def test_no_cache_always_checks(corpus_dir):
    first = batch(corpus_dir)
    second = batch(corpus_dir)
    assert first.files_checked == second.files_checked == 2


# -- invalidation ------------------------------------------------------------


def test_content_change_rechecks_only_that_file(corpus_dir, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    batch(corpus_dir, cache)
    target = corpus_dir / "append.tlp"
    target.write_text(target.read_text() + "% touched\n")
    warm = batch(corpus_dir, cache)
    rechecked = [r.display for r in warm.results if not r.from_cache]
    assert rechecked == [str(target)]
    assert warm.cache_hits == 1


def test_shared_declaration_change_rechecks_whole_corpus(manifest_dir, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_batch(load_project([str(manifest_dir)]), cache=cache)
    assert cold.ok and cold.files_checked == 2
    warm = run_batch(load_project([str(manifest_dir)]), cache=cache)
    assert warm.hit_rate == 1.0
    # Tighten a shared declaration: every member's key moves at once.
    decls = manifest_dir / "decls.tlp"
    decls.write_text(decls.read_text() + "% prelude changed\n")
    invalidated = run_batch(load_project([str(manifest_dir)]), cache=cache)
    assert invalidated.cache_hits == 0
    assert invalidated.files_checked == 2


# -- parallel workers --------------------------------------------------------


@pytest.mark.parametrize("use", ["thread", "process"])
def test_parallel_results_match_sequential(corpus_dir, use):
    sequential = batch(corpus_dir)
    parallel = batch(corpus_dir, jobs=2, use=use)
    assert [(r.display, r.ok, r.diagnostics, r.clauses, r.queries) for r in parallel.results] == [
        (r.display, r.ok, r.diagnostics, r.clauses, r.queries) for r in sequential.results
    ]


def make_corpus(tmp_path, count=6):
    from repro.workloads import APPEND

    root = tmp_path / "many"
    root.mkdir()
    for index in range(count):
        # Distinct texts so every file is real work (no dedup anywhere).
        (root / f"member{index}.tlp").write_text(APPEND + f"% v{index}\n")
    return root


@pytest.mark.parametrize("use", ["thread", "process"])
def test_telemetry_aggregation_under_worker_pool(tmp_path, use):
    """No lost counter updates, no cross-worker double counting.

    The reference is the sequential observed run: whatever the single
    process records, the pooled run must record identically for every
    deterministic counter (timer *counts* too — durations vary).
    """
    root = make_corpus(tmp_path)
    obs.reset()
    METRICS.enabled = True
    try:
        run_batch(load_project([str(root)]), jobs=1)
        reference = METRICS.snapshot()
        obs.reset()
        run_batch(load_project([str(root)]), jobs=3, use=use)
        pooled = METRICS.snapshot()
    finally:
        METRICS.enabled = False
    reference_counters = {
        name: value
        for name, value in reference["counters"].items()
        if not name.startswith("service.")
    }
    pooled_counters = {
        name: value
        for name, value in pooled["counters"].items()
        if not name.startswith("service.")
    }
    assert pooled_counters == reference_counters
    assert pooled_counters["checker.modules_checked"] == 6
    for name, stat in reference["timers"].items():
        assert pooled["timers"][name]["count"] == stat["count"], name


def test_pool_reports_utilisation_and_file_counters(tmp_path):
    root = make_corpus(tmp_path)
    obs.reset()
    METRICS.enabled = True
    try:
        run_batch(load_project([str(root)]), jobs=2, use="thread")
        assert METRICS.counter("service.files.checked") == 6
        assert METRICS.gauge_value("service.jobs") == 2
        utilisation = METRICS.gauge_value("service.worker_utilisation")
        assert utilisation is not None and 0.0 < utilisation <= 1.0
    finally:
        METRICS.enabled = False


def test_cache_plus_process_pool(tmp_path):
    """Cold parallel run populates the cache; warm run needs no workers."""
    root = make_corpus(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_batch(load_project([str(root)]), cache=cache, jobs=3, use="process")
    assert cold.files_checked == 6
    warm = run_batch(load_project([str(root)]), cache=cache, jobs=3, use="process")
    assert warm.hit_rate == 1.0 and warm.files_checked == 0
    assert {r.display: r.diagnostics for r in warm.results} == {
        r.display: r.diagnostics for r in cold.results
    }


def test_unknown_executor_kind_rejected(corpus_dir):
    with pytest.raises(ValueError):
        batch(corpus_dir, jobs=2, use="fibers")


# -- success-set inference through the batch layer ---------------------------


NODECL = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
"""


@pytest.fixture()
def nodecl_corpus_dir(tmp_path):
    """One member that defines app without declaring it."""
    (tmp_path / "nodecl.tlp").write_text(NODECL)
    return tmp_path


def test_infer_results_ride_the_batch_report(nodecl_corpus_dir):
    report = batch(nodecl_corpus_dir, infer=True)
    (result,) = report.results
    assert result.inferred == ("PRED app(list(A), list(A), list(A)).",)
    assert report.to_json()["files"][0]["inferred"] == list(result.inferred)


def test_infer_off_means_no_inferred_lines(nodecl_corpus_dir):
    report = batch(nodecl_corpus_dir)
    assert report.results[0].inferred == ()


def test_infer_results_are_cache_stable(nodecl_corpus_dir, tmp_path):
    """Differential acceptance: a warm --infer run replays the cold
    run's inferred declarations byte-for-byte from the cache."""
    cache = ResultCache(str(tmp_path / "cache"), infer=True)
    cold = batch(nodecl_corpus_dir, cache, infer=True)
    assert cold.cache_hits == 0
    warm_cache = ResultCache(str(tmp_path / "cache"), infer=True)  # reload
    warm = batch(nodecl_corpus_dir, warm_cache, infer=True)
    assert warm.hit_rate == 1.0 and warm.files_checked == 0
    assert [r.inferred for r in warm.results] == [
        r.inferred for r in cold.results
    ]
    assert warm.results[0].inferred == (
        "PRED app(list(A), list(A), list(A)).",
    )


def test_infer_and_plain_runs_do_not_share_cache_entries(
    nodecl_corpus_dir, tmp_path
):
    plain_cache = ResultCache(str(tmp_path / "cache"))
    batch(nodecl_corpus_dir, plain_cache)
    # Same directory, inference on: the plain entry must NOT replay (it
    # has no inferred lines to offer).
    infer_cache = ResultCache(str(tmp_path / "cache"), infer=True)
    report = batch(nodecl_corpus_dir, infer_cache, infer=True)
    assert report.cache_hits == 0
    assert report.results[0].inferred


# -- run reports, progress, histograms ----------------------------------------


def test_run_report_asserts_hit_ratio_and_slow_files(tmp_path):
    from repro.service.report import SCHEMA, build_run_report, write_run_report

    root = make_corpus(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_batch(load_project([str(root)]), cache=cache)
    cold_report = build_run_report(cold)
    assert cold_report["schema"] == SCHEMA
    assert cold_report["cache"] == {"hits": 0, "misses": 6, "hit_rate": 0.0}
    assert cold_report["files"]["checked"] == 6
    slow = cold_report["top_slow_files"]
    assert slow and len(slow) <= 10
    durations = [entry["duration_s"] for entry in slow]
    assert durations == sorted(durations, reverse=True)
    assert all(not entry["from_cache"] for entry in slow)

    warm = run_batch(load_project([str(root)]), cache=cache)
    warm_report = build_run_report(warm, top_n=3)
    assert warm_report["cache"]["hit_rate"] == 1.0
    assert warm_report["files"]["cached"] == 6
    assert len(warm_report["top_slow_files"]) == 3
    assert all(entry["from_cache"] for entry in warm_report["top_slow_files"])

    out = tmp_path / "report.json"
    write_run_report(str(out), warm, project={"name": "t"})
    import json

    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["project"] == {"name": "t"}
    assert payload["cache"]["hit_rate"] == 1.0


def test_run_report_phase_totals_are_recorded(corpus_dir):
    from repro.service.report import build_run_report

    report = batch(corpus_dir)
    payload = build_run_report(report)
    assert set(payload["phases"]) == {"probe_s", "check_s", "record_s"}
    assert all(value >= 0.0 for value in payload["phases"].values())
    assert payload["wall_s"] >= payload["phases"]["check_s"]


def test_run_report_embeds_telemetry_histograms(corpus_dir):
    from repro.service.report import build_run_report

    obs.reset()
    METRICS.enabled = True
    try:
        report = batch(corpus_dir)
        payload = build_run_report(report, telemetry=METRICS.snapshot())
    finally:
        METRICS.enabled = False
    histograms = payload["histograms"]
    assert histograms["service.file.check"]["count"] == 2
    assert "buckets" not in histograms["service.file.check"]  # summarised
    assert payload["counters"]["service.files.checked"] == 2


def test_progress_callback_fires_for_hits_and_fresh(tmp_path):
    root = make_corpus(tmp_path, count=4)
    cache = ResultCache(str(tmp_path / "cache"))
    seen = []

    def progress(done, total, result):
        seen.append((done, total, result.display, result.from_cache))

    run_batch(load_project([str(root)]), cache=cache, progress=progress)
    assert [done for done, _, _, _ in seen] == [1, 2, 3, 4]
    assert all(total == 4 for _, total, _, _ in seen)
    assert all(not cached for _, _, _, cached in seen)

    seen.clear()
    run_batch(load_project([str(root)]), cache=cache, progress=progress)
    assert [done for done, _, _, _ in seen] == [1, 2, 3, 4]
    assert all(cached for _, _, _, cached in seen)


@pytest.mark.parametrize("use", ["thread", "process"])
def test_histograms_merge_across_worker_pools(tmp_path, use):
    """Per-file latency histograms recorded inside pool workers land in
    the coordinator's registry with nothing lost: one sample per file."""
    root = make_corpus(tmp_path)
    obs.reset()
    METRICS.enabled = True
    try:
        run_batch(load_project([str(root)]), jobs=3, use=use)
        merged = METRICS.histogram("service.file.check")
    finally:
        METRICS.enabled = False
    assert merged is not None
    assert merged["count"] == 6
    assert sum(merged["buckets"].values()) == 6
    assert 0.0 < merged["min_s"] <= merged["max_s"]
    assert merged["p50_s"] <= merged["p99_s"]
