"""Concurrent cache writers: the lock/merge/tombstone machinery.

Many ``ResultCache`` instances (think: a batch run racing a daemon, or
several ``tlp-aserve`` executor threads) interleave ``put``/``save`` on
one cache directory.  The contract under test: the index never corrupts,
no writer loses another writer's entries, and explicit invalidations
stay dead through merges.
"""

import json
import os
import threading
import time

from repro.service.cache import (
    LOCK_NAME,
    LOCK_STALE_S,
    CachedResult,
    ResultCache,
)


def _result(tag):
    return CachedResult(
        ok=True,
        diagnostics=(f"diag-{tag}",),
        clauses=1,
        queries=0,
        duration_s=0.0,
        checked_at=0.0,
    )


def _digest(tag):
    return f"{tag:0>64}"


def test_interleaved_writers_lose_no_entries(tmp_path):
    writers, per_writer = 8, 20
    errors = []

    def hammer(writer_index):
        try:
            cache = ResultCache(str(tmp_path))
            for sequence in range(per_writer):
                tag = f"w{writer_index}s{sequence}"
                cache.put(_digest(tag), _digest("d"), _result(tag), display=tag)
                cache.save()  # save after every put: maximal contention
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [
        threading.Thread(target=hammer, args=(index,)) for index in range(writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    # The final index is valid JSON holding every writer's every entry.
    survivor = ResultCache(str(tmp_path))
    assert len(survivor) == writers * per_writer
    for writer_index in range(writers):
        for sequence in range(per_writer):
            tag = f"w{writer_index}s{sequence}"
            replayed = survivor.get(_digest(tag), _digest("d"))
            assert replayed is not None
            assert replayed.diagnostics == (f"diag-{tag}",)
    # No lock file left behind.
    assert not (tmp_path / LOCK_NAME).exists()


def test_save_merges_a_foreign_writers_entries(tmp_path):
    ours = ResultCache(str(tmp_path))
    ours.put(_digest("a"), _digest("d"), _result("a"), display="a")
    ours.save()

    theirs = ResultCache(str(tmp_path))
    theirs.put(_digest("b"), _digest("d"), _result("b"), display="b")
    theirs.save()

    # Our second save must not clobber the entry `theirs` added after
    # our load.
    ours.put(_digest("c"), _digest("d"), _result("c"), display="c")
    ours.save()

    final = ResultCache(str(tmp_path))
    assert len(final) == 3
    assert final.get(_digest("b"), _digest("d")) is not None


def test_invalidation_tombstones_survive_the_merge(tmp_path):
    ours = ResultCache(str(tmp_path))
    ours.put(_digest("a"), _digest("d"), _result("a"), display="victim")
    ours.save()

    # A foreign writer loads an image that still contains the victim.
    theirs = ResultCache(str(tmp_path))
    theirs.put(_digest("b"), _digest("d"), _result("b"), display="other")

    assert ours.invalidate("victim") == 1
    ours.save()
    theirs.save()  # must NOT resurrect the invalidated entry

    final = ResultCache(str(tmp_path))
    assert final.get(_digest("a"), _digest("d")) is None
    assert final.get(_digest("b"), _digest("d")) is not None


def test_invalidate_all_clears_foreign_entries_too(tmp_path):
    ours = ResultCache(str(tmp_path))
    ours.put(_digest("a"), _digest("d"), _result("a"), display="a")
    ours.save()

    theirs = ResultCache(str(tmp_path))
    theirs.put(_digest("b"), _digest("d"), _result("b"), display="b")
    theirs.save()

    ours.invalidate(None)
    ours.save()

    final = ResultCache(str(tmp_path))
    assert len(final) == 0


def test_stale_lock_is_broken_not_waited_out(tmp_path):
    tmp_path.mkdir(exist_ok=True)
    lock = tmp_path / LOCK_NAME
    lock.write_text("99999")
    ancient = time.time() - (LOCK_STALE_S * 10)
    os.utime(lock, (ancient, ancient))

    cache = ResultCache(str(tmp_path))
    cache.put(_digest("a"), _digest("d"), _result("a"), display="a")
    started = time.monotonic()
    cache.save()
    assert time.monotonic() - started < LOCK_STALE_S
    assert not lock.exists()
    assert ResultCache(str(tmp_path)).get(_digest("a"), _digest("d")) is not None


def test_index_stays_parseable_json_throughout(tmp_path):
    stop = threading.Event()
    parse_errors = []

    def reader():
        index = tmp_path / "tlp-cache.json"
        while not stop.is_set():
            if index.exists():
                try:
                    json.loads(index.read_text(encoding="utf-8"))
                except json.JSONDecodeError as error:  # pragma: no cover
                    parse_errors.append(error)
            time.sleep(0.001)

    watcher = threading.Thread(target=reader)
    watcher.start()
    try:
        for writer_index in range(4):
            cache = ResultCache(str(tmp_path))
            for sequence in range(10):
                tag = f"w{writer_index}s{sequence}"
                cache.put(_digest(tag), _digest("d"), _result(tag), display=tag)
                cache.save()
    finally:
        stop.set()
        watcher.join()
    assert parse_errors == []
