"""Persistent result cache: round trips, versioning, observability."""

import json

from repro import obs
from repro.obs import CacheProbeEvent
from repro.service.cache import CachedResult, ResultCache


def sample(ok=True, diagnostics=()):
    return CachedResult(
        ok=ok,
        diagnostics=tuple(diagnostics),
        clauses=2,
        queries=1,
        duration_s=0.01,
        checked_at=ResultCache.now(),
    )


def test_round_trip_within_one_instance(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get("f1", "d1") is None
    cache.put("f1", "d1", sample(diagnostics=("1:2: error: boom",)), display="a.tlp")
    got = cache.get("f1", "d1")
    assert got is not None
    assert got.diagnostics == ("1:2: error: boom",)
    assert cache.hits == 1 and cache.misses == 1


def test_persistence_across_instances(tmp_path):
    first = ResultCache(str(tmp_path))
    first.put("f1", "d1", sample(), display="a.tlp")
    first.save()
    second = ResultCache(str(tmp_path))
    assert len(second) == 1
    assert second.get("f1", "d1") is not None


def test_key_separates_file_and_declarations_digests(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("f1", "d1", sample(), display="a.tlp")
    assert cache.get("f1", "d2") is None  # changed shared declarations
    assert cache.get("f2", "d1") is None  # changed file content
    assert cache.get("f1", "d1") is not None


def test_checker_version_bump_invalidates_everything(tmp_path):
    old = ResultCache(str(tmp_path), checker_version="old")
    old.put("f1", "d1", sample(), display="a.tlp")
    old.save()
    fresh = ResultCache(str(tmp_path), checker_version="new")
    assert len(fresh) == 0
    assert fresh.get("f1", "d1") is None


def test_corrupt_index_treated_as_empty(tmp_path):
    index = tmp_path / "tlp-cache.json"
    index.write_text("{ this is not json")
    cache = ResultCache(str(tmp_path))
    assert len(cache) == 0
    cache.put("f1", "d1", sample(), display="a.tlp")
    cache.save()
    assert json.loads(index.read_text())["entries"]


def test_malformed_entry_is_a_miss_and_purged(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("f1", "d1", sample(), display="a.tlp")
    cache._entries[ResultCache.key("f1", "d1")] = {"garbage": True}
    assert cache.get("f1", "d1") is None
    assert len(cache) == 0


def test_invalidate_by_display_and_wholesale(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("f1", "d1", sample(), display="a.tlp")
    cache.put("f2", "d1", sample(), display="b.tlp")
    assert cache.invalidate("a.tlp") == 1
    assert len(cache) == 1
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_probes_emit_counters_and_trace_events(tmp_path):
    cache = ResultCache(str(tmp_path))
    with obs.collect() as (metrics, sink):
        cache.get("f1", "d1")  # miss
        cache.put("f1", "d1", sample(), display="a.tlp")
        cache.get("f1", "d1")  # hit
    assert metrics.counter("service.cache.hits") == 1
    assert metrics.counter("service.cache.misses") == 1
    probes = [
        event
        for event in sink.events
        if isinstance(event, CacheProbeEvent) and event.cache == "service.results"
    ]
    assert [event.hit for event in probes] == [False, True]


def test_save_is_noop_until_dirty(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.save()
    assert not (tmp_path / "tlp-cache.json").exists()
    cache.put("f1", "d1", sample(), display="a.tlp")
    cache.save()
    assert (tmp_path / "tlp-cache.json").exists()
