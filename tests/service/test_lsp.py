"""The LSP adapter: lifecycle, diagnostics with spans, code actions."""

import asyncio

from repro.service.aserver.lsp import INFER_ACTION_TITLE, LspServer
from repro.service.aserver.protocol import (
    METHOD_NOT_FOUND,
    JsonRpcStream,
    jsonrpc_notification,
    jsonrpc_request,
)
from repro.workloads import APPEND

URI = "file:///tmp/test-doc.tlp"

#: ``cons`` is used but never declared: the checker flags the clause and
#: the linter's TLP204 carries a machine-applicable ``FUNC cons.`` fix-it.
UNDECLARED_FUNC = """\
FUNC nil.
TYPE elist.
elist >= nil.
PRED p(elist).
p(cons).
"""

#: Well-formed clauses for a predicate nobody declared: success-set
#: inference can reconstruct the missing ``PRED`` line.
UNDECLARED_PRED = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
"""


class _Session:
    """A test client talking LSP to an in-process server over TCP."""

    def __init__(self, stream):
        self.stream = stream
        self.notifications = []
        self._next_id = 0

    async def request(self, method, params=None):
        self._next_id += 1
        await self.stream.write(jsonrpc_request(self._next_id, method, params))
        while True:
            message = await asyncio.wait_for(self.stream.read(), timeout=30)
            assert message is not None, "server hung up mid-request"
            if message.get("id") == self._next_id:
                return message
            self.notifications.append(message)

    async def notify(self, method, params=None):
        await self.stream.write(jsonrpc_notification(method, params))

    async def wait_notification(self, method):
        for index, message in enumerate(self.notifications):
            if message.get("method") == method:
                return self.notifications.pop(index)
        while True:
            message = await asyncio.wait_for(self.stream.read(), timeout=30)
            assert message is not None, "server hung up while waiting"
            if message.get("method") == method:
                return message
            self.notifications.append(message)


def _run(scenario):
    """Wire an LspServer to a client session over a loopback socket."""

    async def runner():
        done = asyncio.get_running_loop().create_future()

        async def on_connect(reader, writer):
            server = LspServer(JsonRpcStream(reader, writer))
            try:
                done.set_result(await server.serve())
            except Exception as error:  # pragma: no cover
                if not done.done():
                    done.set_exception(error)

        listener = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = listener.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        session = _Session(JsonRpcStream(reader, writer))
        try:
            result = await scenario(session)
        finally:
            await session.stream.close()
            listener.close()
            await listener.wait_closed()
        exit_code = await asyncio.wait_for(done, timeout=10)
        return result, exit_code

    return asyncio.run(runner())


async def _handshake(session):
    response = await session.request("initialize", {"capabilities": {}})
    return response["result"]


def test_initialize_shutdown_exit_lifecycle():
    async def scenario(session):
        result = await _handshake(session)
        sync = result["capabilities"]["textDocumentSync"]
        assert sync == {"openClose": True, "change": 1}
        assert "quickfix" in result["capabilities"]["codeActionProvider"][
            "codeActionKinds"
        ]
        assert result["serverInfo"]["name"] == "tlp-lsp"
        shutdown = await session.request("shutdown")
        assert shutdown["result"] is None
        await session.notify("exit")

    _, exit_code = _run(scenario)
    assert exit_code == 0


def test_exit_without_shutdown_is_code_one():
    async def scenario(session):
        await _handshake(session)
        await session.notify("exit")

    _, exit_code = _run(scenario)
    assert exit_code == 1


def test_did_open_publishes_diagnostics_with_spans():
    async def scenario(session):
        await _handshake(session)
        await session.notify(
            "textDocument/didOpen",
            {"textDocument": {"uri": URI, "languageId": "tlp", "version": 1,
                              "text": UNDECLARED_FUNC}},
        )
        published = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        params = published["params"]
        assert params["uri"] == URI
        diagnostics = params["diagnostics"]
        assert diagnostics, "expected at least one TLP diagnostic"
        sources = {d["source"] for d in diagnostics}
        assert "tlp-lint" in sources
        tlp204 = [d for d in diagnostics if d.get("code") == "TLP204"]
        assert tlp204, f"no TLP204 in {diagnostics}"
        # `cons` sits on line 5 (0-based 4); the span must cover it.
        span = tlp204[0]["range"]
        assert span["start"]["line"] == 4
        assert span["end"]["line"] >= span["start"]["line"]
        assert span["end"]["character"] > span["start"]["character"] or (
            span["end"]["line"] > span["start"]["line"]
        )
        return diagnostics

    diagnostics, _ = _run(scenario)
    assert any(d["severity"] in (1, 2) for d in diagnostics)


def test_code_action_applies_a_fixit_that_resolves_the_finding():
    async def scenario(session):
        await _handshake(session)
        await session.notify(
            "textDocument/didOpen",
            {"textDocument": {"uri": URI, "version": 1, "text": UNDECLARED_FUNC}},
        )
        published = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        target = next(
            d for d in published["params"]["diagnostics"]
            if d.get("code") == "TLP204"
        )
        response = await session.request(
            "textDocument/codeAction",
            {
                "textDocument": {"uri": URI},
                "range": target["range"],
                "context": {"diagnostics": [target], "only": ["quickfix"]},
            },
        )
        actions = response["result"]
        assert actions, "expected a quickfix for TLP204"
        action = next(a for a in actions if "FUNC cons." in a["title"])
        (edit,) = action["edit"]["changes"][URI]
        assert edit["newText"].startswith("FUNC cons.")
        # Apply the edit the way an editor would (full-line insert).
        line = edit["range"]["start"]["line"]
        assert edit["range"]["start"] == edit["range"]["end"]
        lines = UNDECLARED_FUNC.splitlines(keepends=True)
        lines.insert(line, edit["newText"])
        fixed = "".join(lines)
        await session.notify(
            "textDocument/didChange",
            {
                "textDocument": {"uri": URI, "version": 2},
                "contentChanges": [{"text": fixed}],
            },
        )
        republished = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        remaining = [
            d for d in republished["params"]["diagnostics"]
            if d.get("code") == "TLP204"
        ]
        assert remaining == [], "fix-it did not resolve the finding"
        await session.notify("exit")

    _run(scenario)


def test_infer_declarations_source_action():
    async def scenario(session):
        await _handshake(session)
        await session.notify(
            "textDocument/didOpen",
            {"textDocument": {"uri": URI, "version": 1, "text": UNDECLARED_PRED}},
        )
        await session.wait_notification("textDocument/publishDiagnostics")
        response = await session.request(
            "textDocument/codeAction",
            {
                "textDocument": {"uri": URI},
                "range": {
                    "start": {"line": 0, "character": 0},
                    "end": {"line": 0, "character": 0},
                },
                "context": {"diagnostics": [], "only": ["source"]},
            },
        )
        actions = response["result"]
        infer = [a for a in actions if a["title"] == INFER_ACTION_TITLE]
        assert infer, f"no infer action in {[a['title'] for a in actions]}"
        (edit,) = infer[0]["edit"]["changes"][URI]
        assert edit["range"]["start"] == {"line": 0, "character": 0}
        assert "PRED app(" in edit["newText"]
        await session.notify("exit")

    _run(scenario)


def test_did_close_clears_diagnostics_and_unknown_method_errors():
    async def scenario(session):
        await _handshake(session)
        await session.notify(
            "textDocument/didOpen",
            {"textDocument": {"uri": URI, "version": 1, "text": UNDECLARED_FUNC}},
        )
        await session.wait_notification("textDocument/publishDiagnostics")
        await session.notify(
            "textDocument/didClose", {"textDocument": {"uri": URI}}
        )
        cleared = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        assert cleared["params"] == {"uri": URI, "diagnostics": []}
        response = await session.request("workspace/symbol", {"query": "x"})
        assert response["error"]["code"] == METHOD_NOT_FOUND
        await session.notify("exit")

    _run(scenario)


def test_well_typed_document_publishes_no_errors():
    async def scenario(session):
        await _handshake(session)
        await session.notify(
            "textDocument/didOpen",
            {"textDocument": {"uri": URI, "version": 1, "text": APPEND}},
        )
        published = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        assert [
            d for d in published["params"]["diagnostics"] if d["severity"] == 1
        ] == []
        await session.notify("exit")

    _run(scenario)


#: Declared modes with an ill-moded query: ``makeint`` produces at int
#: but ``usenat`` consumes at nat, so TLP502 fires with a machine
#: fix-it that inserts the ``int2nat`` filter goal.
ILL_MODED = """\
TYPE nat, int.
FUNC 0, s, pred.
int >= nat.
nat >= 0 + s(nat).
int >= pred(int).
PRED int2nat(int, nat).
MODE int2nat(IN, OUT).
int2nat(0, 0).
int2nat(s(X), s(Y)) :- int2nat(X, Y).
PRED makeint(int).
MODE makeint(OUT).
makeint(0).
PRED usenat(nat).
MODE usenat(IN).
usenat(0).
:- makeint(X), usenat(X).
"""


def _apply_span_edit(text, edit):
    """Apply one LSP text edit (0-based positions) to a document."""
    lines = text.split("\n")

    def offset(position):
        return (
            sum(len(line) + 1 for line in lines[: position["line"]])
            + position["character"]
        )

    start = offset(edit["range"]["start"])
    end = offset(edit["range"]["end"])
    return text[:start] + edit["newText"] + text[end:]


def test_tlp502_quickfix_inserts_filter_and_resolves_the_finding():
    async def scenario(session):
        await _handshake(session)
        await session.notify(
            "textDocument/didOpen",
            {"textDocument": {"uri": URI, "version": 1, "text": ILL_MODED}},
        )
        published = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        target = next(
            d for d in published["params"]["diagnostics"]
            if d.get("code") == "TLP502"
        )
        assert target["severity"] == 1  # ill-moded calls are errors
        response = await session.request(
            "textDocument/codeAction",
            {
                "textDocument": {"uri": URI},
                "range": target["range"],
                "context": {"diagnostics": [target], "only": ["quickfix"]},
            },
        )
        action = next(
            a for a in response["result"] if "filter goal" in a["title"]
        )
        (edit,) = action["edit"]["changes"][URI]
        assert "int2nat(X, X_nat)" in edit["newText"]
        fixed = _apply_span_edit(ILL_MODED, edit)
        assert "usenat(X_nat)" in fixed
        await session.notify(
            "textDocument/didChange",
            {
                "textDocument": {"uri": URI, "version": 2},
                "contentChanges": [{"text": fixed}],
            },
        )
        republished = await session.wait_notification(
            "textDocument/publishDiagnostics"
        )
        remaining = [
            d for d in republished["params"]["diagnostics"]
            if str(d.get("code", "")).startswith("TLP5")
        ]
        assert remaining == [], f"quickfix left mode findings: {remaining}"
        await session.notify("exit")

    _run(scenario)
