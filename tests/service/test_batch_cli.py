"""The tlp-batch entry point: exit codes, summary lines, --json contract."""

import json

import pytest

from repro.service.batch import main


def test_corpus_run_prints_per_file_and_summary(corpus_dir, capsys):
    assert main([str(corpus_dir), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert out.count(": well-typed (") == 2
    assert "checked 2 files" in out


def test_ill_typed_corpus_exits_one_with_diagnostics(mixed_corpus_dir, capsys):
    assert main([str(mixed_corpus_dir), "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "ill-typed (1 diagnostics)" in out
    assert "error" in out


def test_missing_path_is_a_usage_error(capsys):
    assert main(["/nonexistent/nowhere", "--no-cache"]) == 2
    assert "tlp-batch:" in capsys.readouterr().err


def test_json_dash_keeps_stdout_machine_readable(corpus_dir, capsys):
    """``--json -`` must leave stdout parseable as one JSON document;
    the human lines move to stderr."""
    assert main([str(corpus_dir), "--no-cache", "--json", "-"]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert len(report["files"]) == 2 and report["ok"]
    assert "well-typed" in captured.err


def test_quiet_suppresses_everything_but_diagnostics(mixed_corpus_dir, capsys):
    assert main([str(mixed_corpus_dir), "--no-cache", "--quiet"]) == 1
    out = capsys.readouterr().out
    assert "checked" not in out and ": well-typed (" not in out
    assert "error" in out  # diagnostics always survive --quiet


def test_warm_json_report_records_cache_hits(corpus_dir, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main([str(corpus_dir), "--cache-dir", cache, "--quiet"]) == 0
    capsys.readouterr()
    assert main([str(corpus_dir), "--cache-dir", cache, "--json", "-", "--quiet"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["hit_rate"] == 1.0
    assert all(f["from_cache"] for f in report["files"])


def test_report_flag_writes_run_report(corpus_dir, tmp_path, capsys):
    out = tmp_path / "run-report.json"
    cache = str(tmp_path / "cache")
    assert main([str(corpus_dir), "--cache-dir", cache, "--report", str(out)]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["schema"] == "tlp-run-report/1"
    assert set(payload) >= {
        "wall_s",
        "jobs",
        "files",
        "cache",
        "phases",
        "top_slow_files",
        "worker_utilisation",
    }
    assert payload["files"]["checked"] == 2
    assert payload["cache"]["hit_rate"] == 0.0
    assert payload["project"]["name"]
    # Warm rerun: the written report reflects the replayed run.
    assert main([str(corpus_dir), "--cache-dir", cache, "--report", str(out)]) == 0
    assert json.loads(out.read_text())["cache"]["hit_rate"] == 1.0


def test_progress_renders_to_stderr_only(corpus_dir, capsys):
    assert main([str(corpus_dir), "--no-cache", "--progress"]) == 0
    captured = capsys.readouterr()
    assert "\r[1/2] " in captured.err
    assert "[2/2] " in captured.err
    # stdout keeps the normal per-file summary, uncorrupted.
    assert "\r" not in captured.out
    assert captured.out.count(": well-typed (") == 2


def test_progress_composes_with_machine_json(corpus_dir, capsys):
    assert main([str(corpus_dir), "--no-cache", "--progress", "--json", "-"]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)  # stdout still one JSON document
    assert report["ok"]
    assert "[2/2] " in captured.err
