"""Project model: discovery, manifests, fingerprints."""

import json

import pytest

from repro.service.project import (
    EMPTY_DECLS_DIGEST,
    MANIFEST_NAME,
    ProjectError,
    discover_tlp_files,
    fingerprint,
    load_project,
)


# -- discovery ---------------------------------------------------------------


def test_directory_walk_is_recursive_sorted_and_filtered(corpus_dir):
    files = discover_tlp_files([str(corpus_dir)])
    names = [path.name for path in files]
    assert names == ["append.tlp", "append_again.tlp"]  # README.txt skipped
    assert files == sorted(files)


def test_explicit_file_kept_regardless_of_suffix(tmp_path):
    odd = tmp_path / "program.txt"
    odd.write_text("FUNC nil.\n")
    assert discover_tlp_files([str(odd)]) == [odd]


def test_duplicates_dropped(corpus_dir):
    twice = discover_tlp_files([str(corpus_dir), str(corpus_dir / "append.tlp")])
    assert len(twice) == len({path.resolve() for path in twice})


def test_missing_path_raises():
    with pytest.raises(ProjectError):
        discover_tlp_files(["/nonexistent/nowhere"])


# -- plain projects ----------------------------------------------------------


def test_plain_project_fingerprints(corpus_dir):
    project = load_project([str(corpus_dir)])
    assert len(project.files) == 2
    assert project.declarations_digest == EMPTY_DECLS_DIGEST
    for member in project.files:
        assert member.digest == fingerprint(member.text)
        assert project.effective_text(member) == member.text
    # Content-addressed: identical text, identical digest.
    assert project.files[0].digest == project.files[1].digest


def test_fingerprint_tracks_content(corpus_dir):
    before = load_project([str(corpus_dir)]).files[0].digest
    target = corpus_dir / "append.tlp"
    target.write_text(target.read_text() + "% comment\n")
    after = load_project([str(corpus_dir)]).files[0].digest
    assert before != after


# -- manifest projects -------------------------------------------------------


def test_manifest_autodetected_in_single_directory(manifest_dir):
    project = load_project([str(manifest_dir)])
    assert project.name == "fixture-corpus"
    assert [member.display for member in project.files] == [
        "members/append.tlp",
        "members/reverse.tlp",
    ]
    assert [entry.display for entry in project.shared] == ["decls.tlp"]


def test_shared_prelude_prepended_and_fingerprinted(manifest_dir):
    project = load_project([str(manifest_dir)])
    assert project.declarations_digest != EMPTY_DECLS_DIGEST
    member = project.files[0]
    effective = project.effective_text(member)
    assert effective.startswith(project.shared[0].text)
    assert effective.endswith(member.text)
    # Editing the shared prelude moves the declarations digest but not
    # the members' own digests — exactly the cache-key split.
    (manifest_dir / "decls.tlp").write_text(
        (manifest_dir / "decls.tlp").read_text() + "% tweak\n"
    )
    reloaded = load_project([str(manifest_dir)])
    assert reloaded.declarations_digest != project.declarations_digest
    assert [m.digest for m in reloaded.files] == [m.digest for m in project.files]


def test_manifest_exclude_and_explicit_flag(manifest_dir):
    manifest = manifest_dir / MANIFEST_NAME
    manifest.write_text(
        json.dumps(
            {
                "include": ["members"],
                "shared": ["decls.tlp"],
                "exclude": ["members/reverse.tlp"],
            }
        )
    )
    project = load_project(["ignored-when-manifest-given"], manifest=str(manifest))
    assert [member.display for member in project.files] == ["members/append.tlp"]


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        "[1, 2, 3]",
        '{"include": "not-a-list"}',
        '{"shared": ["missing.tlp"]}',
    ],
)
def test_malformed_manifest_raises(tmp_path, payload):
    manifest = tmp_path / MANIFEST_NAME
    manifest.write_text(payload)
    with pytest.raises(ProjectError):
        load_project([str(tmp_path)])
