"""The daemon's ``solve`` op: the TLP6xx constraint solver's view of a
file over the line-JSON protocol (and through the async server, which
forwards unknown ops to the same :class:`CheckService`)."""

from pathlib import Path

from repro.service.daemon import CheckService
from repro.service.project import fingerprint

CORPUS = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "corpus"
    / "lint"
    / "polytypes.tlp"
)

POLY_APPEND = """\
TYPE nat, int, list.
FUNC 0, s, nil, cons.
int >= nat.
nat >= 0 + s(nat).
int >= s(int).
list(A) >= nil + cons(A, list(A)).
PRED append(list(A), list(A), list(A)).
append(nil, Y, Y).
append(cons(H, T), Y, cons(H, Z)) :- append(T, Y, Z).
"""


def test_solve_by_path_reports_candidates_and_items():
    service = CheckService()
    response = service.handle({"op": "solve", "path": str(CORPUS)})
    assert response["ok"] and response["op"] == "solve"
    assert response["digest"] == fingerprint(CORPUS.read_text(encoding="utf-8"))
    assert response["candidates"] == ["int", "list(nat)", "nat"]
    by_line = {item["line"]: item for item in response["items"]}
    assert by_line[23]["satisfiable"] is False
    assert by_line[27]["witnesses"][0]["builtin"] is True
    assert "duration_s" in response


def test_solve_by_text_reports_rigid_variables():
    service = CheckService()
    response = service.handle({"op": "solve", "text": POLY_APPEND})
    assert response["ok"]
    for item in response["items"]:
        assert item["satisfiable"] is True
        [rigid] = [n for n in item["nodes"] if n["key"] == "type A"]
        assert rigid["rigid"] is True
        assert sorted(rigid["domain"]) == ["int", "nat"]


def test_solve_monomorphic_text_is_an_error():
    service = CheckService()
    response = service.handle(
        {"op": "solve", "text": "TYPE t.\nFUNC a.\nt >= a.\nPRED p(t).\np(a).\n"}
    )
    assert not response["ok"]
    assert "no polymorphic declarations" in response["error"]


def test_solve_reports_syntax_errors_without_dying():
    service = CheckService()
    response = service.handle({"op": "solve", "text": "PRED p("})
    assert not response["ok"] and response["op"] == "solve"
    # The daemon survives and keeps answering.
    assert service.handle({"op": "stats"})["ok"]


def test_solve_needs_exactly_one_input():
    service = CheckService()
    assert not service.handle({"op": "solve"})["ok"]
    assert not service.handle(
        {"op": "solve", "text": "x.", "path": "y.tlp"}
    )["ok"]


def test_solve_unreadable_path_is_an_error():
    service = CheckService()
    response = service.handle({"op": "solve", "path": "/nonexistent.tlp"})
    assert not response["ok"] and "cannot read" in response["error"]


def test_stats_count_solves():
    service = CheckService()
    service.handle({"op": "solve", "text": POLY_APPEND})
    service.handle({"op": "solve", "path": str(CORPUS)})
    stats = service.handle({"op": "stats"})["stats"]
    assert stats["solves"] == 2
