"""The check daemon: protocol semantics, hot state, subprocess round trip."""

import io
import json
import os
import subprocess
import sys

from repro import obs
from repro.service.daemon import CheckService, serve
from repro.workloads import APPEND, ILL_TYPED_EXAMPLES


# -- CheckService.handle -----------------------------------------------------


def test_check_by_text_then_hot_hit():
    service = CheckService()
    first = service.handle({"op": "check", "text": APPEND})
    assert first["ok"] and first["well_typed"] and first["source"] == "checked"
    assert first["clauses"] == 2
    second = service.handle({"op": "check", "text": APPEND})
    assert second["source"] == "hot"
    assert second["digest"] == first["digest"]
    assert service.hot_hits == 1


def test_check_by_path(tmp_path):
    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    response = CheckService().handle({"op": "check", "path": str(path)})
    assert response["ok"] and response["well_typed"]
    assert response["path"] == str(path)


def test_ill_typed_is_protocol_ok_but_not_well_typed():
    response = CheckService().handle(
        {"op": "check", "text": ILL_TYPED_EXAMPLES["query_two_contexts"]}
    )
    assert response["ok"] is True
    assert response["well_typed"] is False
    assert response["diagnostics"]


def test_check_argument_validation(tmp_path):
    service = CheckService()
    assert not service.handle({"op": "check"})["ok"]
    assert not service.handle({"op": "check", "path": "a", "text": "b"})["ok"]
    missing = service.handle({"op": "check", "path": str(tmp_path / "nope.tlp")})
    assert not missing["ok"] and "cannot read" in missing["error"]


def test_unknown_op_and_non_object_requests():
    service = CheckService()
    assert not service.handle({"op": "frobnicate"})["ok"]
    assert not service.handle(["not", "an", "object"])["ok"]
    assert service.errors == 2


def test_persistent_cache_shared_across_daemon_lifetimes(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = CheckService(cache_dir=cache_dir)
    assert first.handle({"op": "check", "text": APPEND})["source"] == "checked"
    # A new daemon process: no hot modules, but the verdict store is warm.
    second = CheckService(cache_dir=cache_dir)
    replayed = second.handle({"op": "check", "text": APPEND})
    assert replayed["source"] == "cache"
    assert replayed["well_typed"] is True


def test_stats_reports_counts_and_telemetry():
    obs.METRICS.enable()
    service = CheckService()
    service.handle({"op": "check", "text": APPEND})
    response = service.handle({"op": "stats"})
    assert response["ok"]
    stats = response["stats"]
    assert stats["requests"] == 2 and stats["checks"] == 1
    assert stats["hot_modules"] == 1
    assert response["telemetry"]["counters"]["checker.modules_checked"] == 1


def test_invalidate_drops_hot_and_cached_state(tmp_path):
    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    service = CheckService(cache_dir=str(tmp_path / "cache"))
    service.handle({"op": "check", "path": str(path)})
    response = service.handle({"op": "invalidate", "path": str(path)})
    assert response["dropped_hot"] == 1 and response["dropped_cached"] == 1
    assert service.handle({"op": "check", "path": str(path)})["source"] == "checked"
    assert service.handle({"op": "invalidate"})["dropped_hot"] == 1


# -- the serve loop ----------------------------------------------------------


def run_session(lines, service=None):
    out = io.StringIO()
    serve(service or CheckService(), io.StringIO("".join(lines)), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


def test_serve_round_trip_check_stats_shutdown():
    responses = run_session(
        [
            json.dumps({"op": "check", "text": APPEND}) + "\n",
            "\n",  # blank lines are skipped
            json.dumps({"op": "stats"}) + "\n",
            json.dumps({"op": "shutdown"}) + "\n",
            json.dumps({"op": "check", "text": APPEND}) + "\n",  # after shutdown
        ]
    )
    assert [r.get("op") for r in responses] == ["check", "stats", "shutdown"]
    assert responses[0]["well_typed"] is True
    assert responses[1]["stats"]["requests"] == 2


def test_serve_survives_malformed_json():
    responses = run_session(
        [
            "this is not json\n",
            json.dumps({"op": "stats"}) + "\n",
        ]
    )
    assert responses[0]["ok"] is False and "malformed JSON" in responses[0]["error"]
    assert responses[1]["ok"] is True


def test_serve_stops_at_eof_without_shutdown():
    responses = run_session([json.dumps({"op": "stats"}) + "\n"])
    assert len(responses) == 1


# -- subprocess smoke --------------------------------------------------------


def test_daemon_subprocess_round_trip(tmp_path):
    """One real tlp-serve process: check + stats over the JSON protocol."""
    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    requests = "".join(
        json.dumps(request) + "\n"
        for request in [
            {"op": "check", "path": str(path)},
            {"op": "stats"},
            {"op": "shutdown"},
        ]
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.service.daemon", "--cache-dir", str(tmp_path / "c")],
        input=requests,
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    responses = [json.loads(line) for line in completed.stdout.splitlines()]
    assert [r["op"] for r in responses] == ["check", "stats", "shutdown"]
    assert responses[0]["well_typed"] is True
    assert responses[1]["stats"]["checks"] == 1
    assert "ready" in completed.stderr


# -- the infer op ------------------------------------------------------------


NODECL_APP = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
"""


def test_infer_by_text():
    response = CheckService().handle({"op": "infer", "text": NODECL_APP})
    assert response["ok"] and response["op"] == "infer"
    assert response["declarations"] == ["PRED app(list(A), list(A), list(A))."]
    assert any("app/arg1" in line for line in response["success_sets"])


def test_infer_by_path(tmp_path):
    path = tmp_path / "nodecl.tlp"
    path.write_text(NODECL_APP)
    response = CheckService().handle({"op": "infer", "path": str(path)})
    assert response["ok"] and response["path"] == str(path)
    assert response["declarations"] == ["PRED app(list(A), list(A), list(A))."]


def test_infer_fully_declared_file_reconstructs_nothing():
    response = CheckService().handle({"op": "infer", "text": APPEND})
    assert response["ok"] and response["declarations"] == []
    assert response["success_sets"]


def test_infer_argument_validation():
    service = CheckService()
    assert not service.handle({"op": "infer"})["ok"]
    assert not service.handle({"op": "infer", "path": "a", "text": "b"})["ok"]
    broken = service.handle({"op": "infer", "text": "FUNC ."})
    assert not broken["ok"]


def test_infer_counts_in_stats():
    service = CheckService()
    service.handle({"op": "infer", "text": NODECL_APP})
    stats = service.handle({"op": "stats"})["stats"]
    assert stats["infers"] == 1


# -- metrics and health ops ---------------------------------------------------


def test_metrics_op_returns_parseable_exposition():
    from repro.obs import parse_exposition

    obs.METRICS.enable()
    service = CheckService()
    service.handle({"op": "check", "text": APPEND})
    response = service.handle({"op": "metrics"})
    assert response["ok"] and response["op"] == "metrics"
    assert response["content_type"].startswith("text/plain")
    samples = parse_exposition(response["body"])
    # Daemon runtime gauges ride along even without library telemetry.
    assert samples["tlp_daemon_hot_module_limit"] == 256
    assert samples["tlp_daemon_hot_modules"] == 1
    assert samples["tlp_daemon_uptime_seconds"] >= 0
    assert samples["tlp_daemon_requests"] >= 1
    # Library telemetry was enabled, so checker counters appear too.
    assert samples["tlp_checker_modules_checked_total"] == 1


def test_metrics_op_works_with_telemetry_disabled():
    from repro.obs import parse_exposition

    service = CheckService()
    samples = parse_exposition(service.handle({"op": "metrics"})["body"])
    assert samples["tlp_daemon_hot_modules"] == 0
    assert "tlp_checker_modules_checked_total" not in samples


def test_health_op_reports_uptime_lru_and_memo(tmp_path):
    service = CheckService(cache_dir=str(tmp_path / "cache"))
    service.handle({"op": "check", "text": APPEND})
    response = service.handle({"op": "health"})
    assert response["ok"] and response["op"] == "health"
    health = response["health"]
    assert health["uptime_s"] >= 0
    assert health["pid"] == os.getpid()
    assert health["requests"] == 2 and health["errors"] == 0
    assert health["hot_modules"] == {
        "count": 1,
        "limit": 256,
        "occupancy": 1 / 256,
    }
    assert set(health["shared_memo"]) >= {"entries", "scopes"}
    assert health["cache"]["dir"] == str(tmp_path / "cache")
    assert health["cache"]["entries"] == 1


def test_health_without_cache_reports_none():
    health = CheckService().handle({"op": "health"})["health"]
    assert health["cache"] is None
    assert health["telemetry_enabled"] is False


def test_stats_op_carries_histograms_and_uptime():
    """Satellite: {"op": "stats"} embeds latency histograms and daemon
    uptime over the serve loop, not just via direct handle() calls."""
    obs.METRICS.enable()
    responses = run_session(
        [
            json.dumps({"op": "check", "text": APPEND}) + "\n",
            json.dumps({"op": "stats"}) + "\n",
        ]
    )
    stats_response = responses[1]
    assert stats_response["stats"]["uptime_s"] >= 0
    histograms = stats_response["telemetry"]["histograms"]
    assert histograms  # at least one latency distribution was recorded
    for summary in histograms.values():
        assert summary["count"] >= 1
        assert "p99_s" in summary


# -- the path→digest stat cache (hot-LRU staleness regression) ---------------


def test_edited_file_misses_hot_lru_and_gets_fresh_verdict(tmp_path):
    """The staleness regression: a `check` on a path whose bytes changed
    on disk must never replay the old verdict — verdict state is keyed
    by content digest, and the digest is re-derived once the stat
    signature moves."""
    service = CheckService()
    path = tmp_path / "m.tlp"
    path.write_text(APPEND)
    first = service.handle({"op": "check", "path": str(path)})
    assert first["source"] == "checked" and first["well_typed"]

    # Unchanged file: stat cache + hot LRU serve it without re-checking.
    warm = service.handle({"op": "check", "path": str(path)})
    assert warm["source"] == "hot" and warm["digest"] == first["digest"]

    # Rewrite the file with different (ill-typed) bytes.
    path.write_text(ILL_TYPED_EXAMPLES["query_two_contexts"])
    os.utime(path)  # fresh mtime_ns even on coarse filesystem clocks
    edited = service.handle({"op": "check", "path": str(path)})
    assert edited["digest"] != first["digest"]
    assert edited["source"] == "checked"
    assert edited["well_typed"] is False


def test_stat_cache_counts_and_invalidation(tmp_path):
    service = CheckService()
    path = tmp_path / "m.tlp"
    path.write_text(APPEND)
    service.handle({"op": "check", "path": str(path)})
    stats = service.handle({"op": "stats"})["stats"]
    assert stats["stat_entries"] == 1
    service.handle({"op": "invalidate"})
    stats = service.handle({"op": "stats"})["stats"]
    assert stats["stat_entries"] == 0


def test_same_content_under_two_paths_shares_hot_state(tmp_path):
    service = CheckService()
    first = tmp_path / "a.tlp"
    second = tmp_path / "b.tlp"
    first.write_text(APPEND)
    second.write_text(APPEND)
    cold = service.handle({"op": "check", "path": str(first)})
    warm = service.handle({"op": "check", "path": str(second)})
    assert cold["digest"] == warm["digest"]
    assert warm["source"] == "hot"  # digest-keyed, not path-keyed


# -- cancellation through the service --------------------------------------


def test_handle_reports_cancellation_as_structured_response():
    from repro.checker.cancel import CancelToken
    from repro.workloads.generators import synthetic_list_program

    service = CheckService()
    token = CancelToken()
    token.cancel()
    response = service.handle(
        {"op": "check", "text": synthetic_list_program(10)}, cancel=token
    )
    assert response["ok"] is False
    assert response["cancelled"] is True
    assert "checkpoint" in response["error"]
    assert service.cancellations == 1


# -- graceful drain ----------------------------------------------------------


def test_serve_drains_when_draining_flag_set():
    service = CheckService()
    requests = io.StringIO(
        json.dumps({"op": "check", "text": APPEND}) + "\n"
        + json.dumps({"op": "stats"}) + "\n"
    )
    out = io.StringIO()
    service.draining = True  # as the SIGTERM handler would set it
    serve(service, requests, out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    # The in-flight request's response was written, then the loop stopped.
    assert len(responses) == 1
    assert responses[0]["op"] == "check" and responses[0]["ok"]


def test_daemon_sigterm_drains_and_persists_cache(tmp_path):
    """A real tlp-serve process: SIGTERM → drain message, clean exit,
    persisted cache index."""
    import signal as signal_module
    import time as time_module

    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.daemon",
            "--cache-dir",
            str(cache_dir),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        process.stdin.write(json.dumps({"op": "check", "path": str(path)}) + "\n")
        process.stdin.flush()
        response = json.loads(process.stdout.readline())
        assert response["well_typed"] is True
        process.send_signal(signal_module.SIGTERM)
        for _ in range(100):
            if process.poll() is not None:
                break
            time_module.sleep(0.1)
        assert process.poll() == 0, "daemon did not exit cleanly on SIGTERM"
    finally:
        if process.poll() is None:
            process.kill()
        _, stderr = process.communicate(timeout=30)
    assert "draining" in stderr
    assert (cache_dir / "tlp-cache.json").exists()
