"""Shared fixtures for the batch-service tests: tiny corpora on disk."""

import pytest

from repro import obs
from repro.workloads import APPEND, ILL_TYPED_EXAMPLES


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.METRICS.disable()
    obs.TRACER.clear_sinks()
    obs.reset()
    yield
    obs.METRICS.disable()
    obs.TRACER.clear_sinks()
    obs.reset()

SHARED_DECLS = """\
FUNC nil, cons.
TYPE elist, nelist, list.
elist >= nil.
nelist(A) >= cons(A,list(A)).
list(A) >= elist + nelist(A).
PRED app(list(A),list(A),list(A)).
PRED rev(list(A),list(A)).
"""

APPEND_CLAUSES = """\
app(nil,L,L).
app(cons(X,L),M,cons(X,N)) :- app(L,M,N).
"""

REVERSE_CLAUSES = """\
rev(nil,nil).
rev(cons(X,L),R) :- rev(L,M), app(M,cons(X,nil),R).
"""


@pytest.fixture()
def corpus_dir(tmp_path):
    """A plain directory corpus: two well-typed files, one nested."""
    (tmp_path / "append.tlp").write_text(APPEND)
    nested = tmp_path / "nested"
    nested.mkdir()
    (nested / "append_again.tlp").write_text(APPEND)
    (tmp_path / "README.txt").write_text("not a program")
    return tmp_path


@pytest.fixture()
def mixed_corpus_dir(tmp_path):
    """A corpus with one ill-typed member."""
    (tmp_path / "good.tlp").write_text(APPEND)
    (tmp_path / "bad.tlp").write_text(ILL_TYPED_EXAMPLES["query_two_contexts"])
    return tmp_path


@pytest.fixture()
def manifest_dir(tmp_path):
    """A manifest corpus with a shared declaration prelude."""
    (tmp_path / "decls.tlp").write_text(SHARED_DECLS)
    members = tmp_path / "members"
    members.mkdir()
    (members / "append.tlp").write_text(APPEND_CLAUSES)
    (members / "reverse.tlp").write_text(REVERSE_CLAUSES)
    (tmp_path / "tlp-project.json").write_text(
        '{"name": "fixture-corpus", "include": ["members"], "shared": ["decls.tlp"]}\n'
    )
    return tmp_path
