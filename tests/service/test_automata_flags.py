"""``--no-automata`` parity across the four entry points, plus the
automata observability surface (``--stats`` lines, daemon gauges and
``health``)."""

import io
import json
import sys

from repro import obs
from repro.core.automata import AUTOMATA
from repro.service.daemon import CheckService
from repro.workloads import APPEND


def test_tlp_check_accepts_and_restores_flag(tmp_path, capsys):
    from repro.checker.cli import main

    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    before = AUTOMATA.enabled
    assert main([str(path), "--no-automata"]) == 0
    assert AUTOMATA.enabled == before
    with_flag = capsys.readouterr().out
    assert main([str(path)]) == 0
    assert AUTOMATA.enabled == before
    # Verdict and report are byte-identical either way.
    assert capsys.readouterr().out == with_flag


def test_tlp_check_stats_reports_automata_state(tmp_path, capsys):
    from repro.checker.cli import main

    path = tmp_path / "append.tlp"
    path.write_text(APPEND)
    assert main([str(path), "--stats", "--no-automata"]) == 0
    assert "tree automata: disabled (--no-automata)" in capsys.readouterr().out
    assert main([str(path), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "tree automata:" in out and "compiled scope(s)" in out


def test_tlp_batch_accepts_and_restores_flag(corpus_dir, capsys):
    import re

    from repro.service.batch import main

    def normalised():
        # Wall-clock figures differ run to run; everything else must not.
        return re.sub(r"\d+(\.\d+)?m?s", "<t>", capsys.readouterr().out)

    before = AUTOMATA.enabled
    assert main([str(corpus_dir), "--no-cache", "--no-automata"]) == 0
    assert AUTOMATA.enabled == before
    with_flag = normalised()
    assert main([str(corpus_dir), "--no-cache"]) == 0
    assert normalised() == with_flag


def test_tlp_serve_flag_disables_store_for_the_session(monkeypatch, capsys):
    from repro.service.daemon import main

    request = json.dumps({"op": "health"}) + "\n"
    monkeypatch.setattr(sys, "stdin", io.StringIO(request))
    before = AUTOMATA.enabled
    assert main(["--no-automata"]) == 0
    assert AUTOMATA.enabled == before
    response = json.loads(capsys.readouterr().out.strip())
    assert response["health"]["automata"]["enabled"] == 0


def test_tlp_aserve_flag_disables_store_for_the_session(monkeypatch):
    from repro.service.aserver import server as aserver

    observed = {}

    def fake_run(coroutine):
        coroutine.close()
        observed["enabled"] = AUTOMATA.enabled
        return 0

    monkeypatch.setattr(aserver.asyncio, "run", fake_run)
    before = AUTOMATA.enabled
    assert aserver.main(["--port", "0", "--no-automata"]) == 0
    assert observed["enabled"] is False
    assert AUTOMATA.enabled == before


def test_tlp_no_automata_env_var_disables_fresh_stores(monkeypatch):
    from repro.core.automata import AutomataStore

    monkeypatch.setenv("TLP_NO_AUTOMATA", "1")
    assert AutomataStore().enabled is False
    monkeypatch.delenv("TLP_NO_AUTOMATA")
    assert AutomataStore().enabled is True


# -- observability -------------------------------------------------------------


def test_runtime_stats_lines_cover_automata():
    lines = obs.runtime_stats_lines()
    assert any(line.startswith("tree automata:") for line in lines)
    previous = AUTOMATA.set_enabled(False)
    try:
        assert "tree automata: disabled (--no-automata)" in obs.runtime_stats_lines()
    finally:
        AUTOMATA.set_enabled(previous)


def test_publish_runtime_gauges_exports_automaton_gauges():
    obs.METRICS.enable()
    try:
        from repro.core import SubtypeEngine
        from repro.workloads import paper_universe

        SubtypeEngine(paper_universe())  # ensure at least one scope compiled
        obs.publish_runtime_gauges()
        exposition = obs.prometheus_text()
        assert "tlp_subtype_automaton_enabled" in exposition
        assert "tlp_subtype_automaton_states" in exposition
    finally:
        obs.METRICS.disable()


def test_daemon_health_embeds_automata_stats():
    service = CheckService()
    service.handle({"op": "check", "text": APPEND})
    health = service.handle({"op": "health"})["health"]
    automata = health["automata"]
    assert set(automata) >= {
        "enabled",
        "scopes",
        "states",
        "transitions",
        "cache_entries",
        "attachments",
    }
    assert automata["enabled"] == int(AUTOMATA.enabled)


def test_daemon_runtime_gauges_include_automata():
    gauges = CheckService()._runtime_gauges()
    assert "subtype.automaton.enabled" in gauges
    assert "subtype.automaton.scopes" in gauges
