"""Dependency-closure invalidation: graph, on_change, watcher."""

import asyncio
import os

from repro import obs
from repro.service.aserver.workspace import StatWatcher, Workspace

from .conftest import APPEND_CLAUSES, REVERSE_CLAUSES, SHARED_DECLS


def _display(workspace, name):
    for member in workspace.project.files:
        if member.path.name == name:
            return member.display
    raise AssertionError(f"no member named {name}")


def test_dependency_graph_members_and_shared(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        graph = workspace.dependency_graph()
        members = set(workspace.member_displays())
        assert len(members) == 2
        for display in members:
            assert graph[display] == [display]
        (shared_display,) = [d for d in graph if d not in members]
        assert set(graph[shared_display]) == members
    finally:
        workspace.close()


def test_closure_of_member_shared_manifest_and_unknown(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        append = manifest_dir / "members" / "append.tlp"
        assert workspace.closure_of(str(append)) == [
            _display(workspace, "append.tlp")
        ]
        everyone = sorted(workspace.member_displays())
        assert workspace.closure_of(str(manifest_dir / "decls.tlp")) == everyone
        assert (
            workspace.closure_of(str(manifest_dir / "tlp-project.json"))
            == everyone
        )
        assert workspace.closure_of("/no/such/file.tlp") == []
    finally:
        workspace.close()


def test_member_edit_rechecks_only_that_member(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        first = workspace.check_all()
        assert first.ok and first.cache_misses == 2
        (manifest_dir / "members" / "append.tlp").write_text(
            APPEND_CLAUSES + "\napp(nil,nil,nil).\n"
        )
        report = workspace.on_change()
        append = _display(workspace, "append.tlp")
        assert report.changed == [append]
        assert report.closure == [append]
        assert report.checked == [append]
        assert not report.declarations_changed
        assert report.cache_hits == 1  # reverse.tlp replayed
        assert report.cache_misses == 1
        assert report.ok
    finally:
        workspace.close()


def test_shared_prelude_edit_rechecks_the_whole_corpus(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        workspace.check_all()
        (manifest_dir / "decls.tlp").write_text(
            SHARED_DECLS + "PRED extra(list(A)).\n"
        )
        report = workspace.on_change([str(manifest_dir / "decls.tlp")])
        assert report.declarations_changed
        everyone = sorted(workspace.member_displays())
        assert report.closure == everyone
        assert report.checked == everyone
        assert report.cache_hits == 0
    finally:
        workspace.close()


def test_spurious_change_event_is_all_cache_hits(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        workspace.check_all()
        report = workspace.on_change(
            [str(manifest_dir / "members" / "append.tlp")]
        )
        assert report.changed == []
        assert report.checked == []
        assert report.cache_hits == 2
    finally:
        workspace.close()


def test_removed_member_leaves_the_corpus(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        workspace.check_all()
        reverse = _display(workspace, "reverse.tlp")
        (manifest_dir / "members" / "reverse.tlp").unlink()
        report = workspace.on_change()
        assert report.removed == [reverse]
        assert reverse not in workspace.results
        assert len(workspace.results) == 1
    finally:
        workspace.close()


def test_fifty_file_corpus_only_closure_misses_the_cache(tmp_path):
    """The acceptance bar: edit 1 of 50 members, the other 49 must be
    cache hits — asserted through the cache-probe telemetry counters."""
    (tmp_path / "decls.tlp").write_text(SHARED_DECLS)
    members = tmp_path / "members"
    members.mkdir()
    for index in range(50):
        clauses = APPEND_CLAUSES if index % 2 else REVERSE_CLAUSES
        (members / f"m{index:02d}.tlp").write_text(
            f"% member {index}\n{clauses}"
        )
    (tmp_path / "tlp-project.json").write_text(
        '{"name": "fifty", "include": ["members"], "shared": ["decls.tlp"]}\n'
    )
    workspace = Workspace([str(tmp_path)])
    try:
        cold = workspace.check_all()
        assert cold.ok and cold.cache_misses == 50
        (members / "m07.tlp").write_text(
            f"% member 7 (edited)\n{APPEND_CLAUSES}"
        )
        obs.METRICS.enable()
        report = workspace.on_change([str(members / "m07.tlp")])
        probe_hits = obs.METRICS.counter("service.cache.hits")
        probe_misses = obs.METRICS.counter("service.cache.misses")
        assert report.changed == [_display(workspace, "m07.tlp")]
        assert report.closure == report.checked == report.changed
        assert report.cache_hits == probe_hits == 49
        assert report.cache_misses == probe_misses == 1
        assert obs.METRICS.counter("service.aserver.rechecks") == 1
    finally:
        workspace.close()


def test_stat_watcher_sees_edits_additions_and_deletions(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    try:
        watcher = StatWatcher(workspace)
        assert watcher.poll_once() == []
        append = manifest_dir / "members" / "append.tlp"
        append.write_text(APPEND_CLAUSES + "\n% touched\n")
        os.utime(append)  # ensure a fresh mtime_ns even on coarse clocks
        assert watcher.poll_once() == [str(append)]
        assert watcher.poll_once() == []
        (manifest_dir / "members" / "reverse.tlp").unlink()
        workspace.project = workspace.project  # watch list is re-derived
        changed = watcher.poll_once()
        assert str(manifest_dir / "members" / "reverse.tlp") in changed
    finally:
        workspace.close()


def test_stat_watcher_drives_on_change(manifest_dir):
    workspace = Workspace([str(manifest_dir)])
    reports = []

    async def scenario():
        watcher = StatWatcher(workspace, interval_s=0.05)
        task = asyncio.get_running_loop().create_task(
            watcher.run(reports.append)
        )
        try:
            (manifest_dir / "members" / "append.tlp").write_text(
                APPEND_CLAUSES + "\napp(nil,nil,nil).\n"
            )
            for _ in range(100):
                if reports:
                    break
                await asyncio.sleep(0.05)
        finally:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    try:
        workspace.check_all()
        asyncio.run(scenario())
        assert reports, "watcher never fired"
        append = _display(workspace, "append.tlp")
        assert reports[0].changed == [append]
        assert reports[0].checked == [append]
    finally:
        workspace.close()


def test_workspace_without_explicit_cache_still_replays(corpus_dir):
    workspace = Workspace([str(corpus_dir)])
    try:
        first = workspace.check_all()
        assert first.cache_misses == len(first.results) > 0
        second = workspace.check_all()
        assert second.cache_misses == 0
        assert second.cache_hits == len(first.results)
    finally:
        workspace.close()
