"""Shared test configuration.

The recursive core algorithms raise the interpreter recursion limit on
demand (``repro.core.recursion``); doing it once up front keeps hypothesis
from warning about a mid-test limit change.
"""

import sys

sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))
