"""Shared test configuration.

The recursive core algorithms raise the interpreter recursion limit on
demand (``repro.core.recursion``); doing it once up front keeps hypothesis
from warning about a mid-test limit change.
"""

import sys

import pytest

sys.setrecursionlimit(max(sys.getrecursionlimit(), 20_000))


@pytest.fixture(autouse=True)
def _cold_shared_memo():
    """Start every test with a cold process-wide subtype memo.

    The shared memo deliberately leaks verdicts across engines — that is
    its job — but tests that count memo hits/entries must see the same
    cold-start behaviour the seed code had, independent of test order.
    """
    from repro.core.shared_memo import SHARED_MEMO

    SHARED_MEMO.clear()
    yield
    SHARED_MEMO.clear()
