"""End-to-end property test: random queries against the list library.

For every generated query: the checker must return a verdict (never
crash), and every *accepted* query must execute with zero Theorem 6
violations.  Patterns are built by sampling inhabitants of each argument
position's declared type and abstracting random subterms into fresh
variables — so both well-typed and ill-typed queries arise naturally
(a variable is always fine; a subterm swapped across types is not).
"""

import itertools
import random
from typing import List, Tuple

import pytest

from repro.core import GeneralTypeSemantics, TypedInterpreter
from repro.lp import Query
from repro.terms import Struct, Term, Var
from repro.workloads import load

_counter = itertools.count()


def abstract(rng: random.Random, term: Term, probability: float) -> Term:
    """Randomly replace subterms of a ground term with fresh variables."""
    if rng.random() < probability:
        return Var(f"Q{next(_counter)}")
    if isinstance(term, Struct) and term.args:
        return Struct(
            term.functor,
            tuple(abstract(rng, arg, probability) for arg in term.args),
        )
    return term


def swap_in_foreign(rng: random.Random, term: Term, foreign: Term) -> Term:
    """Replace one random leaf with a term of a different type."""
    if isinstance(term, Struct) and term.args and rng.random() < 0.7:
        index = rng.randrange(len(term.args))
        args = list(term.args)
        args[index] = swap_in_foreign(rng, args[index], foreign)
        return Struct(term.functor, tuple(args))
    return foreign


@pytest.fixture(scope="module")
def setting():
    module = load("list_library")
    interpreter = TypedInterpreter(module.checker, module.program, check_program=False)
    semantics = GeneralTypeSemantics(module.constraints)
    return module, interpreter, semantics


def generate_queries(module, semantics, rng, count) -> List[Tuple[str, Query]]:
    """Random single-atom queries over the module's declared predicates."""
    predicate_types = list(module.predicate_types)
    queries: List[Tuple[str, Query]] = []
    while len(queries) < count:
        declared = rng.choice(predicate_types)
        arguments: List[Term] = []
        feasible = True
        for arg_type in declared.args:
            members = sorted(semantics.inhabitants(arg_type, 4), key=repr)
            if not members:
                feasible = False
                break
            base = rng.choice(members)
            arguments.append(abstract(rng, base, probability=0.3))
        if not feasible:
            continue
        kind = "typed"
        if arguments and rng.random() < 0.4:
            # Corrupt one argument with a foreign term: often ill-typed.
            index = rng.randrange(len(arguments))
            arguments[index] = swap_in_foreign(
                rng, arguments[index], Struct("pred", (Struct("0", ()),))
            )
            kind = "corrupted"
        queries.append((kind, Query((Struct(declared.functor, tuple(arguments)),))))
    return queries


def test_random_queries_check_and_execute_consistently(setting):
    module, interpreter, semantics = setting
    rng = random.Random(2026)
    accepted = rejected = 0
    for kind, query in generate_queries(module, semantics, rng, 120):
        report = module.checker.check_query(query)  # must not raise
        if not report.well_typed:
            rejected += 1
            continue
        accepted += 1
        result = interpreter.run(
            query, max_answers=4, depth_limit=64, check_query=False
        )
        assert result.consistent, (str(query), result.violations[:1])
    # Both behaviours must actually be exercised by the generator.
    assert accepted >= 20, (accepted, rejected)
    assert rejected >= 10, (accepted, rejected)


def test_fully_abstract_queries_always_accepted(setting):
    """An atom of distinct fresh variables is always well-typed
    (every position types by clause 1 of match)."""
    module, interpreter, _ = setting
    for declared in module.predicate_types:
        atom = Struct(
            declared.functor,
            tuple(Var(f"V{next(_counter)}") for _ in declared.args),
        )
        report = module.checker.check_query(Query((atom,)))
        assert report.well_typed, declared


def test_ground_members_always_accepted(setting):
    """An atom whose arguments are inhabitants of their declared types is
    always well-typed."""
    module, _, semantics = setting
    rng = random.Random(7)
    for declared in module.predicate_types:
        arguments = []
        for arg_type in declared.args:
            members = sorted(semantics.inhabitants(arg_type, 4), key=repr)
            arguments.append(rng.choice(members))
        report = module.checker.check_query(
            Query((Struct(declared.functor, tuple(arguments)),))
        )
        assert report.well_typed, declared
